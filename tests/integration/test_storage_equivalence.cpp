// The storage-backend determinism contract, end to end: for a fixed seed,
// every space_storage backend (dense, packed, lazy) under every generation
// mode (sequential, per_group, intra_group) must produce *bit-identical*
// proposed-index and cost streams — and therefore identical tuning results —
// on both a real paper space (XgemmDirect, 10 parameters, 17 constraints)
// and a skewed divides-chain space. Dense x sequential is the reference.
//
// The memory side of the contract is pinned too: packed must be at least
// 3x smaller than dense on the XgemmDirect space.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atf/atf.hpp"
#include "atf/cf/generic.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search/surrogate_search.hpp"

namespace {

namespace xg = atf::kernels::xgemm;

constexpr std::uint64_t kSeed = 0x5eed;

// Sanitizers multiply time and memory; shrink the evaluation budget and
// the technique/mode matrix there (space generation dominates the runtime,
// so dropping combinations matters more than dropping evaluations).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::size_t kEvaluations = 40;
constexpr bool kFullMatrix = false;
#else
constexpr std::size_t kEvaluations = 120;
constexpr bool kFullMatrix = true;
#endif

/// Deterministic pure pseudo-cost (FNV-1a over the configuration entries):
/// every parameter changes the cost and the value is platform-independent,
/// so identical proposal streams imply identical cost streams and vice
/// versa a single diverging configuration is caught immediately.
double pseudo_cost(const atf::configuration& config) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const auto& [name, value] : config.entries()) {
    for (const std::string& text : {name, atf::to_string(value)}) {
      for (const char c : text) {
        hash ^= std::uint64_t(static_cast<unsigned char>(c));
        hash *= 1099511628211ull;
      }
    }
  }
  return double(hash >> 11) / double(1ull << 53);
}

enum class technique_kind { random, opentuner, surrogate };

constexpr technique_kind kTechniques[] = {
    technique_kind::random, technique_kind::opentuner,
    technique_kind::surrogate};

const char* name_of(technique_kind kind) {
  switch (kind) {
    case technique_kind::random: return "random";
    case technique_kind::opentuner: return "opentuner";
    case technique_kind::surrogate: return "surrogate";
  }
  return "?";
}

std::unique_ptr<atf::search_technique> make_technique(technique_kind kind) {
  if (kind == technique_kind::opentuner) {
    return std::make_unique<atf::search::opentuner_search>(kSeed);
  }
  if (kind == technique_kind::surrogate) {
    return std::make_unique<atf::search::surrogate_search>(kSeed);
  }
  return std::make_unique<atf::search::random_search>(kSeed);
}

constexpr atf::generation_mode kModes[] = {atf::generation_mode::sequential,
                                           atf::generation_mode::per_group,
                                           atf::generation_mode::intra_group};

const char* name_of(atf::generation_mode mode) {
  switch (mode) {
    case atf::generation_mode::sequential: return "sequential";
    case atf::generation_mode::per_group: return "per_group";
    case atf::generation_mode::intra_group: return "intra_group";
  }
  return "?";
}

constexpr atf::space_storage_backend kBackends[] = {
    atf::space_storage_backend::dense, atf::space_storage_backend::packed,
    atf::space_storage_backend::lazy};

/// Everything the tuner proposed and observed, in order.
struct run_streams {
  std::vector<std::uint64_t> indices;
  std::vector<double> costs;
  atf::tuning_result<double> result;
};

enum class space_kind { xgemm, skewed };

/// The skewed divides-chain space: a heavily constrained two-parameter
/// chain (few survivors per root, wildly varying subtree sizes) plus a
/// second unconstrained group so per_group generation has real work.
std::vector<atf::tp_group> make_skewed_groups() {
  constexpr std::size_t n = 512;
  auto chain = atf::tp("CHAIN", atf::interval<std::size_t>(1, n),
                       atf::divides(n));
  auto link = atf::tp("LINK", atf::interval<std::size_t>(1, n),
                      atf::divides(n / chain));
  auto lane = atf::tp("LANE", atf::interval<std::size_t>(1, 16));
  return {atf::G(chain, link), atf::G(lane)};
}

run_streams run(space_kind space, atf::generation_mode mode,
                atf::space_storage_backend backend, technique_kind kind) {
  atf::space_storage_policy storage;
  storage.backend = backend;
  // A deliberately small chunk cache so lazy runs exercise eviction and
  // regeneration *during* the tuning loop, not just at generation time.
  storage.chunk_cache_bytes = 64 * 1024;

  atf::tuner tuner;
  if (space == space_kind::xgemm) {
    const xg::problem prob{16, 16, 16};
    const xg::device_limits limits{64, 8 * 1024};
    auto setup =
        xg::make_tuning_parameters(prob, xg::size_mode::general, limits);
    tuner.tuning_parameters(setup.group());
  } else {
    const auto groups = make_skewed_groups();
    tuner.tuning_parameters(groups[0], groups[1]);
  }
  tuner.generation(mode);
  tuner.space_storage(storage);
  tuner.search_technique(make_technique(kind));
  tuner.abort_condition(atf::cond::evaluations(kEvaluations));

  run_streams out;
  auto record = [&out](const atf::configuration& config) {
    out.indices.push_back(config.space_index().value_or(~std::uint64_t{0}));
    const double cost = pseudo_cost(config);
    out.costs.push_back(cost);
    return cost;
  };
  out.result = tuner.tune(atf::cf::pure(record));
  return out;
}

void expect_identical_streams(const run_streams& reference,
                              const run_streams& other,
                              const std::string& label) {
  ASSERT_EQ(other.indices.size(), reference.indices.size()) << label;
  for (std::size_t i = 0; i < reference.indices.size(); ++i) {
    ASSERT_EQ(other.indices[i], reference.indices[i])
        << label << " proposed index diverges at evaluation " << i;
    ASSERT_EQ(other.costs[i], reference.costs[i])
        << label << " cost diverges at evaluation " << i;
  }
  ASSERT_TRUE(reference.result.has_best()) << label;
  ASSERT_TRUE(other.result.has_best()) << label;
  EXPECT_EQ(*other.result.best_cost, *reference.result.best_cost) << label;
  EXPECT_EQ(other.result.best_configuration().to_string(),
            reference.result.best_configuration().to_string())
      << label;
}

void run_matrix(space_kind space) {
  for (const auto kind : kTechniques) {
    if (!kFullMatrix && kind == technique_kind::opentuner) {
      continue;
    }
    const auto reference = run(space, atf::generation_mode::sequential,
                               atf::space_storage_backend::dense, kind);
    ASSERT_EQ(reference.indices.size(), kEvaluations);
    for (const auto backend : kBackends) {
      for (const auto mode : kModes) {
        if (backend == atf::space_storage_backend::dense &&
            mode == atf::generation_mode::sequential) {
          continue;  // the reference itself
        }
        if (!kFullMatrix && mode == atf::generation_mode::per_group) {
          continue;
        }
        const std::string label = std::string(name_of(kind)) + "/" +
                                  atf::to_string(backend) + "/" +
                                  name_of(mode);
        expect_identical_streams(reference, run(space, mode, backend, kind),
                                 label);
      }
    }
  }
}

TEST(StorageEquivalence, AllBackendsAndModesMatchDenseOnXgemmDirect) {
  run_matrix(space_kind::xgemm);
}

TEST(StorageEquivalence, AllBackendsAndModesMatchDenseOnSkewedChain) {
  run_matrix(space_kind::skewed);
}

TEST(StorageEquivalence, PackedIsAtLeastThreeTimesSmallerOnXgemmDirect) {
  const xg::problem prob{16, 16, 16};
  const xg::device_limits limits{64, 8 * 1024};
  auto make_space = [&](atf::space_storage_backend backend) {
    auto setup =
        xg::make_tuning_parameters(prob, xg::size_mode::general, limits);
    atf::space_storage_policy storage;
    storage.backend = backend;
    return atf::search_space::generate({setup.group()},
                                       atf::generation_mode::sequential, 0,
                                       {}, storage);
  };
  const auto dense = make_space(atf::space_storage_backend::dense);
  const auto packed = make_space(atf::space_storage_backend::packed);
  ASSERT_EQ(packed.size(), dense.size());
  EXPECT_GT(dense.memory_bytes(), 0u);
  EXPECT_GE(dense.memory_bytes(), 3 * packed.memory_bytes())
      << "packed: " << packed.memory_bytes()
      << " dense: " << dense.memory_bytes();
}

}  // namespace
