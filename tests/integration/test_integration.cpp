// Integration tests: end-to-end tuning runs across all modules — the
// Listing 2 saxpy pipeline on the simulated device, a small XgemmDirect
// tuning whose exhaustive optimum is verified against a brute-force oracle,
// ATF-vs-baseline ordering, and multi-objective tuning through the OpenCL
// cost function.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/saxpy.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/simulated_annealing.hpp"
#include "baselines/opentuner_like.hpp"

namespace {

namespace sx = atf::kernels::saxpy;
namespace xg = atf::kernels::xgemm;

TEST(Integration, SaxpyListing2EndToEnd) {
  const std::size_t n = 1 << 16;
  auto setup = sx::make_tuning_parameters(n);
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .glb_size(n / setup.wpt)
                .lcl_size(setup.ls);

  atf::tuner tuner;
  tuner.tuning_parameters(setup.wpt, setup.ls);
  auto result = tuner.tune(cf);  // exhaustive over the full space

  ASSERT_TRUE(result.has_best());
  const std::size_t best_wpt = result.best_configuration()["WPT"];
  const std::size_t best_ls = result.best_configuration()["LS"];
  EXPECT_EQ(n % best_wpt, 0u);
  EXPECT_EQ((n / best_wpt) % best_ls, 0u);
  // The naive configuration must be strictly worse than the optimum.
  setup.wpt.set_current(1);
  setup.ls.set_current(1);
  atf::configuration naive;
  naive.add("WPT", atf::to_tp_value(std::size_t{1}));
  naive.add("LS", atf::to_tp_value(std::size_t{1}));
  EXPECT_GT(cf(naive), *result.best_cost);
}

TEST(Integration, ExhaustiveEqualsBruteForceOracleOnSmallGemm) {
  const xg::problem prob{16, 16, 16};
  const xg::device_limits limits{64, 8 * 1024};
  const auto dev = ocls::find_device("NVIDIA", "K20m");

  auto measure = [&](const xg::params& p) -> double {
    auto ctx = std::make_shared<ocls::context>(dev);
    ocls::command_queue queue(ctx);
    try {
      return queue
          .launch(xg::make_kernel(),
                  xg::launch_range(prob, p, xg::size_mode::general), {},
                  xg::make_defines(prob, p))
          .profile_ns();
    } catch (const ocls::error&) {
      return std::numeric_limits<double>::infinity();
    }
  };

  // Tuner path.
  auto setup =
      xg::make_tuning_parameters(prob, xg::size_mode::general, limits);
  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  auto result = tuner.tune([&](const atf::configuration& config) {
    xg::params p;
    p.wgd = config["WGD"];
    p.mdimcd = config["MDIMCD"];
    p.ndimcd = config["NDIMCD"];
    p.mdimad = config["MDIMAD"];
    p.ndimbd = config["NDIMBD"];
    p.kwid = config["KWID"];
    p.vwmd = config["VWMD"];
    p.vwnd = config["VWND"];
    p.pada = config["PADA"];
    p.padb = config["PADB"];
    const double ns = measure(p);
    if (!std::isfinite(ns)) {
      throw atf::evaluation_error("launch failed");
    }
    return ns;
  });

  // Oracle path: brute-force the whole sub-domain.
  double oracle = std::numeric_limits<double>::infinity();
  const std::uint64_t vws[] = {1, 2, 4, 8};
  for (std::uint64_t wgd = 1; wgd <= 16; ++wgd)
    for (std::uint64_t mc = 1; mc <= 16; ++mc)
      for (std::uint64_t nc = 1; nc <= 16; ++nc)
        for (std::uint64_t ma = 1; ma <= 16; ++ma)
          for (std::uint64_t nb = 1; nb <= 16; ++nb)
            for (std::uint64_t kw = 1; kw <= 16; ++kw)
              for (const auto vm : vws)
                for (const auto vn : vws)
                  for (int pa = 0; pa <= 1; ++pa)
                    for (int pb = 0; pb <= 1; ++pb) {
                      const xg::params p{wgd, mc, nc, ma, nb,
                                         kw,  vm, vn, pa != 0, pb != 0};
                      if (!xg::valid(prob, p, xg::size_mode::general,
                                     limits)) {
                        continue;
                      }
                      oracle = std::min(oracle, measure(p));
                    }

  ASSERT_TRUE(result.has_best());
  EXPECT_DOUBLE_EQ(*result.best_cost, oracle)
      << "exhaustive search must find the provably best configuration";
}

TEST(Integration, AtfBeatsPenaltyBasedOpenTunerOnConstrainedGemm) {
  const xg::problem prob = xg::caffe_input_size(3);  // smallest space
  const auto dev = ocls::find_device("NVIDIA", "K20m");
  const auto limits = xg::device_limits::of(dev.profile());

  auto measure = [&](const xg::params& p) -> double {
    auto ctx = std::make_shared<ocls::context>(dev);
    ocls::command_queue queue(ctx);
    try {
      return queue
          .launch(xg::make_kernel(),
                  xg::launch_range(prob, p, xg::size_mode::general), {},
                  xg::make_defines(prob, p))
          .profile_ns();
    } catch (const ocls::error&) {
      return std::numeric_limits<double>::infinity();
    }
  };

  // ATF: constrained space + annealing, small budget.
  auto setup =
      xg::make_tuning_parameters(prob, xg::size_mode::general, limits);
  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  tuner.search_technique(
      std::make_unique<atf::search::simulated_annealing>(4.0, 5));
  tuner.abort_condition(atf::cond::evaluations(3'000));
  auto atf_result = tuner.tune([&](const atf::configuration& config) {
    xg::params p;
    p.wgd = config["WGD"];
    p.mdimcd = config["MDIMCD"];
    p.ndimcd = config["NDIMCD"];
    p.mdimad = config["MDIMAD"];
    p.ndimbd = config["NDIMBD"];
    p.kwid = config["KWID"];
    p.vwmd = config["VWMD"];
    p.vwnd = config["VWND"];
    p.pada = config["PADA"];
    p.padb = config["PADB"];
    const double ns = measure(p);
    if (!std::isfinite(ns)) {
      throw atf::evaluation_error("launch failed");
    }
    return ns;
  });

  // OpenTuner baseline: unconstrained + penalty, same budget; expected to
  // find no valid configuration, so the kernel keeps its defaults.
  baselines::opentuner::tuner baseline;
  const auto tops = xg::unconstrained_range_sizes(prob);
  baseline.add_parameter_range("WGD", tops[0]);
  baseline.add_parameter_range("MDIMCD", tops[1]);
  baseline.add_parameter_range("NDIMCD", tops[2]);
  baseline.add_parameter_range("MDIMAD", tops[3]);
  baseline.add_parameter_range("NDIMBD", tops[4]);
  baseline.add_parameter_range("KWID", tops[5]);
  baseline.add_parameter("VWMD", {1, 2, 4, 8});
  baseline.add_parameter("VWND", {1, 2, 4, 8});
  baseline.add_parameter("PADA", {0, 1});
  baseline.add_parameter("PADB", {0, 1});
  const double penalty = 1e15;
  const auto ot_result = baseline.run(
      3'000, penalty,
      [&](const baselines::opentuner::configuration& c) {
        xg::params p;
        p.wgd = c.at("WGD");
        p.mdimcd = c.at("MDIMCD");
        p.ndimcd = c.at("NDIMCD");
        p.mdimad = c.at("MDIMAD");
        p.ndimbd = c.at("NDIMBD");
        p.kwid = c.at("KWID");
        p.vwmd = c.at("VWMD");
        p.vwnd = c.at("VWND");
        p.pada = c.at("PADA") != 0;
        p.padb = c.at("PADB") != 0;
        if (!xg::valid(prob, p, xg::size_mode::general, limits)) {
          return penalty;
        }
        const double ns = measure(p);
        return std::isfinite(ns) ? ns : penalty;
      },
      17);

  const double opentuner_ns = ot_result.found_valid
                                  ? ot_result.best_cost
                                  : measure(xg::params::defaults());
  ASSERT_TRUE(atf_result.has_best());
  EXPECT_LT(*atf_result.best_cost, opentuner_ns);
}

TEST(Integration, MultiObjectiveTuningThroughOclCostFunction) {
  const std::size_t n = 1 << 14;
  auto setup = sx::make_tuning_parameters(n);
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .glb_size(n / setup.wpt)
                .lcl_size(setup.ls);

  atf::tuner tuner;
  tuner.tuning_parameters(setup.wpt, setup.ls);
  auto result = tuner.tune([&](const atf::configuration& config) {
    return cf.runtime_energy(config);
  });

  ASSERT_TRUE(result.has_best());
  // Pure runtime tuning must agree on the primary objective.
  atf::tuner runtime_tuner;
  auto setup2 = sx::make_tuning_parameters(n);
  auto cf2 = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                 .inputs(atf::cf::scalar<std::size_t>(n),
                         atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                         atf::cf::buffer<float>(n))
                 .glb_size(n / setup2.wpt)
                 .lcl_size(setup2.ls);
  runtime_tuner.tuning_parameters(setup2.wpt, setup2.ls);
  auto runtime_result = runtime_tuner.tune(cf2);
  EXPECT_DOUBLE_EQ(result.best_cost->primary, *runtime_result.best_cost);
}

TEST(Integration, TuningLogCapturesEveryEvaluation) {
  const std::string path = ::testing::TempDir() + "atf_integration_log.csv";
  const std::size_t n = 4096;
  auto setup = sx::make_tuning_parameters(n);
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .glb_size(n / setup.wpt)
                .lcl_size(setup.ls);
  atf::tuner tuner;
  tuner.tuning_parameters(setup.wpt, setup.ls);
  tuner.log_file(path);
  auto result = tuner.tune(cf);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);  // header
  std::uint64_t rows = 0;
  std::uint64_t failed = 0;
  while (std::getline(in, line)) {
    ++rows;
    if (line.find("failed") != std::string::npos) {
      ++failed;
    }
  }
  EXPECT_EQ(rows, result.evaluations);
  EXPECT_EQ(failed, result.failed_evaluations);
  std::remove(path.c_str());
}

}  // namespace
