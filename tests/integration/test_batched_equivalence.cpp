// The determinism contract of batched evaluation, end to end: for a pure
// cost function, a fixed-seed tuning run in batched mode — at any worker
// count — must produce exactly the sequential run's best configuration,
// improvement history and CSV log (modulo the wall-clock column). Exercised
// on the two paper spaces with real constraint structure: XgemmDirect
// (one 10-parameter group, 17 constraints) and conv2d (two groups).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "atf/atf.hpp"
#include "atf/cf/generic.hpp"
#include "atf/common/string_utils.hpp"
#include "atf/kernels/conv2d.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/genetic_search.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"

namespace {

namespace xg = atf::kernels::xgemm;
namespace cv = atf::kernels::conv2d;

constexpr std::uint64_t kSeed = 0x5eed;

// A deterministic, pure stand-in cost: an FNV-1a hash over the
// configuration's entries, mapped into [0, 1) — every parameter changes the
// cost, the landscape is rugged, and the value is identical on every
// platform and thread.
double pseudo_cost(const atf::configuration& config) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const auto& [name, value] : config.entries()) {
    for (const std::string& text : {name, atf::to_string(value)}) {
      for (const char c : text) {
        hash ^= std::uint64_t(static_cast<unsigned char>(c));
        hash *= 1099511628211ull;
      }
    }
  }
  return double(hash >> 11) / double(1ull << 53);
}

struct run_outcome {
  atf::tuning_result<double> result;
  std::vector<std::string> rows;  ///< CSV rows, elapsed_ns column removed
};

std::vector<std::string> read_rows_without_elapsed(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::vector<std::string> rows;
  for (std::string line; std::getline(in, line);) {
    auto fields = atf::common::split(line, ',');
    if (fields.size() > 1) {
      fields.erase(fields.begin() + 1);  // elapsed_ns differs across runs
    }
    std::string stripped;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) {
        stripped += ',';
      }
      stripped += fields[i];
    }
    rows.push_back(std::move(stripped));
  }
  return rows;
}

enum class technique_kind { random, genetic, opentuner };

std::unique_ptr<atf::search_technique> make_technique(technique_kind kind) {
  if (kind == technique_kind::genetic) {
    return std::make_unique<atf::search::genetic_search>(kSeed);
  }
  if (kind == technique_kind::opentuner) {
    return std::make_unique<atf::search::opentuner_search>(kSeed);
  }
  return std::make_unique<atf::search::random_search>(kSeed);
}

run_outcome run_xgemm(atf::evaluation_mode mode, std::size_t workers,
                      technique_kind kind) {
  // The test name disambiguates the file per ctest process: the per-case
  // processes run concurrently and would otherwise interleave one CSV.
  const std::string path =
      ::testing::TempDir() + "atf_equiv_xgemm_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
      std::to_string(workers) + ".csv";
  const xg::problem prob{16, 16, 16};
  const xg::device_limits limits{64, 8 * 1024};
  auto setup =
      xg::make_tuning_parameters(prob, xg::size_mode::general, limits);
  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  tuner.search_technique(make_technique(kind));
  tuner.abort_condition(atf::cond::evaluations(300));
  tuner.evaluation(mode).concurrency(workers).log_file(path);
  run_outcome out{tuner.tune(atf::cf::pure(pseudo_cost)), {}};
  out.rows = read_rows_without_elapsed(path);
  std::remove(path.c_str());
  return out;
}

run_outcome run_conv2d(atf::evaluation_mode mode, std::size_t workers,
                       technique_kind kind) {
  const std::string path =
      ::testing::TempDir() + "atf_equiv_conv2d_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
      std::to_string(workers) + ".csv";
  const cv::problem prob{16, 20, 3, 3};
  auto setup = cv::make_tuning_parameters(prob, 64, 2048);
  atf::tuner tuner;
  tuner.tuning_parameters(setup.groups()[0], setup.groups()[1]);
  tuner.search_technique(make_technique(kind));
  tuner.abort_condition(atf::cond::evaluations(300));
  tuner.evaluation(mode).concurrency(workers).log_file(path);
  run_outcome out{tuner.tune(atf::cf::pure(pseudo_cost)), {}};
  out.rows = read_rows_without_elapsed(path);
  std::remove(path.c_str());
  return out;
}

void expect_equivalent(const run_outcome& sequential,
                       const run_outcome& batched) {
  EXPECT_EQ(sequential.result.evaluations, batched.result.evaluations);
  ASSERT_TRUE(sequential.result.has_best());
  ASSERT_TRUE(batched.result.has_best());
  EXPECT_EQ(*sequential.result.best_cost, *batched.result.best_cost);
  EXPECT_EQ(sequential.result.best_configuration().to_string(),
            batched.result.best_configuration().to_string());
  ASSERT_EQ(sequential.result.history.size(), batched.result.history.size());
  for (std::size_t i = 0; i < sequential.result.history.size(); ++i) {
    EXPECT_EQ(sequential.result.history[i].evaluations,
              batched.result.history[i].evaluations);
    EXPECT_EQ(sequential.result.history[i].cost,
              batched.result.history[i].cost);
  }
  EXPECT_EQ(sequential.rows, batched.rows);
}

TEST(BatchedEquivalence, RandomSearchOnXgemmDirect) {
  const auto sequential =
      run_xgemm(atf::evaluation_mode::sequential, 0, technique_kind::random);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto batched = run_xgemm(atf::evaluation_mode::batched, workers,
                                   technique_kind::random);
    expect_equivalent(sequential, batched);
  }
}

TEST(BatchedEquivalence, GeneticSearchOnXgemmDirect) {
  const auto sequential =
      run_xgemm(atf::evaluation_mode::sequential, 0, technique_kind::genetic);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto batched = run_xgemm(atf::evaluation_mode::batched, workers,
                                   technique_kind::genetic);
    expect_equivalent(sequential, batched);
  }
}

TEST(BatchedEquivalence, RandomSearchOnConv2d) {
  const auto sequential =
      run_conv2d(atf::evaluation_mode::sequential, 0, technique_kind::random);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto batched = run_conv2d(atf::evaluation_mode::batched, workers,
                                    technique_kind::random);
    expect_equivalent(sequential, batched);
  }
}

TEST(BatchedEquivalence, GeneticSearchOnConv2d) {
  const auto sequential =
      run_conv2d(atf::evaluation_mode::sequential, 0, technique_kind::genetic);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto batched = run_conv2d(atf::evaluation_mode::batched, workers,
                                    technique_kind::genetic);
    expect_equivalent(sequential, batched);
  }
}

// The batch-aware ensemble (opentuner_search). At concurrency 1 its mixed
// batch degenerates to the sequential bandit step, so the full equivalence
// contract holds. Wider batches deliberately change the proposal stream
// (one slot per bandit-picked member instead of one pick per step), so
// there the contract is rerun-determinism: same seed and worker count ->
// identical exploration, twice.
TEST(BatchedEquivalence, OpentunerSearchOnXgemmDirectAtConcurrencyOne) {
  const auto sequential = run_xgemm(atf::evaluation_mode::sequential, 0,
                                    technique_kind::opentuner);
  const auto batched =
      run_xgemm(atf::evaluation_mode::batched, 1, technique_kind::opentuner);
  expect_equivalent(sequential, batched);
}

TEST(BatchedEquivalence, OpentunerSearchOnConv2dAtConcurrencyOne) {
  const auto sequential = run_conv2d(atf::evaluation_mode::sequential, 0,
                                     technique_kind::opentuner);
  const auto batched =
      run_conv2d(atf::evaluation_mode::batched, 1, technique_kind::opentuner);
  expect_equivalent(sequential, batched);
}

TEST(BatchedEquivalence, OpentunerSearchRerunsDeterministicallyOnXgemmDirect) {
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const auto first = run_xgemm(atf::evaluation_mode::batched, workers,
                                 technique_kind::opentuner);
    const auto second = run_xgemm(atf::evaluation_mode::batched, workers,
                                  technique_kind::opentuner);
    expect_equivalent(first, second);
  }
}

TEST(BatchedEquivalence, OpentunerSearchRerunsDeterministicallyOnConv2d) {
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const auto first = run_conv2d(atf::evaluation_mode::batched, workers,
                                  technique_kind::opentuner);
    const auto second = run_conv2d(atf::evaluation_mode::batched, workers,
                                   technique_kind::opentuner);
    expect_equivalent(first, second);
  }
}

}  // namespace
