// The session layer's byte-level formats: the minimal JSON value, the
// stable configuration hash and the tuning-record round trip. These pin
// exact bytes and exact hash values on purpose — journals written today
// must be readable (and hash-matchable) by every future build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>

#include "atf/common/hash.hpp"
#include "atf/configuration.hpp"
#include "atf/session/json.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

namespace {

namespace json = atf::session::json;

TEST(SessionJson, SerializesCompactlyInInsertionOrder) {
  json::value obj{json::object{}};
  obj.set("b", json::value(2));
  obj.set("a", json::value("x"));
  obj.set("n", json::value(nullptr));
  obj.set("t", json::value(true));
  EXPECT_EQ(json::serialize(obj), R"({"b":2,"a":"x","n":null,"t":true})");
}

TEST(SessionJson, RoundTripsIntegersWithSignedness) {
  // u64 above 2^53: a double-backed JSON library would corrupt this.
  const std::uint64_t big = 0xFFFFFFFFFFFFFFFFull;
  json::value v{json::array{json::value(std::int64_t{-42}), json::value(big)}};
  const json::value back = json::parse(json::serialize(v));
  EXPECT_EQ(back.as_array()[0].as_int64(), -42);
  EXPECT_EQ(back.as_array()[1].as_uint64(), big);
}

TEST(SessionJson, RoundTripsDoublesBitExactly) {
  for (const double d : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324,
                         std::numeric_limits<double>::max()}) {
    const json::value back = json::parse(json::serialize(json::value(d)));
    EXPECT_EQ(back.as_double(), d) << json::serialize(json::value(d));
  }
}

TEST(SessionJson, AcceptsNonFiniteTokens) {
  EXPECT_TRUE(std::isinf(json::parse("Infinity").as_double()));
  EXPECT_TRUE(std::isinf(json::parse("-Infinity").as_double()));
  EXPECT_TRUE(std::isnan(json::parse("NaN").as_double()));
  // And serializes them back as the same tokens.
  EXPECT_EQ(json::serialize(
                json::value(std::numeric_limits<double>::infinity())),
            "Infinity");
}

TEST(SessionJson, RoundTripsEscapedStrings) {
  const std::string nasty = "a\"b\\c\n\t\x01 d";
  const json::value back = json::parse(json::serialize(json::value(nasty)));
  EXPECT_EQ(back.as_string(), nasty);
}

TEST(SessionJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse(""), json::parse_error);
  EXPECT_THROW((void)json::parse("{"), json::parse_error);
  EXPECT_THROW((void)json::parse("{} trailing"), json::parse_error);
  EXPECT_THROW((void)json::parse(R"({"a":})"), json::parse_error);
}

atf::configuration make_config() {
  atf::configuration config;
  config.add("WPT", atf::to_tp_value<int>(8));
  config.add("LS", atf::to_tp_value<std::size_t>(64));
  config.add("USE_LM", atf::to_tp_value<bool>(true));
  config.add("ALPHA", atf::to_tp_value<double>(0.25));
  return config;
}

TEST(ConfigurationHash, IsIndependentOfEntryOrder) {
  atf::configuration reordered;
  reordered.add("ALPHA", atf::to_tp_value<double>(0.25));
  reordered.add("USE_LM", atf::to_tp_value<bool>(true));
  reordered.add("LS", atf::to_tp_value<std::size_t>(64));
  reordered.add("WPT", atf::to_tp_value<int>(8));
  EXPECT_EQ(make_config().hash(), reordered.hash());
}

TEST(ConfigurationHash, IgnoresTheSpaceIndex) {
  atf::configuration a = make_config();
  atf::configuration b = make_config();
  b.set_space_index(1234);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ConfigurationHash, DistinguishesTypeAlternatives) {
  // int64 8 vs uint64 8 vs bool-ish payloads must hash apart: the journal
  // round-trips the exact alternative, and conflating them would let a
  // replayed record shadow a genuinely different configuration.
  atf::configuration as_signed;
  as_signed.add("x", atf::to_tp_value<int>(1));
  atf::configuration as_unsigned;
  as_unsigned.add("x", atf::to_tp_value<unsigned>(1));
  atf::configuration as_bool;
  as_bool.add("x", atf::to_tp_value<bool>(true));
  EXPECT_NE(as_signed.hash(), as_unsigned.hash());
  EXPECT_NE(as_signed.hash(), as_bool.hash());
  EXPECT_NE(as_unsigned.hash(), as_bool.hash());
}

TEST(ConfigurationHash, IsStableAcrossRunsAndBuilds) {
  // Golden values: these pin the algorithm itself (FNV-1a, name-sorted,
  // type tag + 8-byte LE payload). If this test ever fails, the hash
  // changed and existing journals silently stop warm-starting — treat it
  // as a format break, not as a test to update casually.
  atf::configuration empty;
  EXPECT_EQ(empty.hash(), 14695981039346656037ull);  // FNV offset basis

  atf::configuration one;
  one.add("x", atf::to_tp_value<int>(1));
  EXPECT_EQ(one.hash(), 9834166910308413898ull);

  EXPECT_EQ(make_config().hash(), 14796513398446533610ull);
}

TEST(ConfigurationHash, HasNoCollisionsOverADenseGrid) {
  // Collision sanity: 4096 distinct small configurations (the shape real
  // spaces produce: few parameters, small integer values) must map to
  // 4096 distinct hashes. FNV-1a's avalanche is weak in theory; this
  // checks it holds up on the actual input distribution.
  std::set<std::uint64_t> seen;
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int c = 0; c < 16; ++c) {
        atf::configuration config;
        config.add("A", atf::to_tp_value<int>(a));
        config.add("B", atf::to_tp_value<int>(b));
        config.add("C", atf::to_tp_value<int>(c));
        seen.insert(config.hash());
      }
    }
  }
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Crc32, MatchesKnownVectors) {
  // The standard zlib CRC-32 check value.
  EXPECT_EQ(atf::common::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(atf::common::crc32(""), 0x00000000u);
}

TEST(TuningRecord, RoundTripsThroughJson) {
  atf::configuration config = make_config();
  config.set_space_index(77);
  atf::session::tuning_record record =
      atf::session::tuning_record::from_configuration(config);
  record.valid = true;
  record.scalar = 1.0 / 3.0;
  record.cost = json::value(1.0 / 3.0);
  record.technique = "random_search";
  record.run_id = "run-3";
  record.sequence = 41;
  record.timestamp_ms = 1754300000000;

  const auto back = atf::session::record_from_json(to_json(record));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->config_hash, config.hash());
  EXPECT_EQ(back->to_configuration(), config);
  EXPECT_EQ(back->space_index, std::optional<std::uint64_t>{77});
  EXPECT_TRUE(back->valid);
  EXPECT_EQ(back->scalar, record.scalar);
  EXPECT_EQ(back->cost, record.cost);
  EXPECT_EQ(back->technique, "random_search");
  EXPECT_EQ(back->run_id, "run-3");
  EXPECT_EQ(back->sequence, 41u);
  EXPECT_EQ(back->timestamp_ms, 1754300000000);
  // The round-tripped configuration hashes identically — the property the
  // whole warm start rests on.
  EXPECT_EQ(back->to_configuration().hash(), config.hash());
}

TEST(TuningRecord, RoundTripsFailures) {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(3));
  atf::session::tuning_record record =
      atf::session::tuning_record::from_configuration(config);
  record.valid = false;
  record.failure = "device hung";

  const auto back = atf::session::record_from_json(to_json(record));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->valid);
  EXPECT_EQ(back->failure, "device hung");
  EXPECT_TRUE(back->cost.is_null());
}

TEST(TuningRecord, RejectsMalformedObjects) {
  EXPECT_FALSE(atf::session::record_from_json(json::value(42)).has_value());
  EXPECT_FALSE(
      atf::session::record_from_json(json::parse("{}")).has_value());
  // A record whose value tag is unknown decodes to nothing rather than
  // guessing a type.
  EXPECT_FALSE(atf::session::record_from_json(
                   json::parse(R"({"type":"record","hash":"0",)"
                               R"("config":{"x":{"t":"?","v":"1"}},)"
                               R"("valid":true,"scalar":0})"))
                   .has_value());
}

}  // namespace
