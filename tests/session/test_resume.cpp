// Kill-and-resume equivalence, end to end across real processes: a run
// SIGKILLed from inside its cost function, resumed on the same journal,
// must converge to the same best as an uninterrupted fixed-seed baseline —
// with the already-measured prefix served from the store instead of being
// re-measured. The driver binary path is injected by CMake via
// ATF_RESUME_DRIVER.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef ATF_RESUME_DRIVER
#error "ATF_RESUME_DRIVER must be defined by the build system"
#endif

namespace {

struct command_result {
  int exit_code;
  std::string stdout_text;
};

command_result run_command(const std::string& command) {
  const std::string with_redirect = command + " 2>/dev/null";
  FILE* pipe = popen(with_redirect.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 256> buffer{};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

/// Extracts "<key>=<token>" from the driver's summary line.
std::string field(const std::string& output, const std::string& key) {
  const std::size_t at = output.find(key + "=");
  EXPECT_NE(at, std::string::npos) << output;
  if (at == std::string::npos) {
    return {};
  }
  const std::size_t start = at + key.size() + 1;
  std::size_t end = start;
  while (end < output.size() && output[end] != ' ' && output[end] != '\n') {
    ++end;
  }
  return output.substr(start, end - start);
}

class ResumeTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Per-test directory: ctest runs every test case as its own process,
    // so a fixture-shared journal path races under parallel ctest.
    dir_ = ::testing::TempDir() + "atf_resume_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(std::system(("mkdir -p '" + dir_ + "'").c_str()), 0);
    baseline_journal_ = dir_ + "/baseline.jsonl";
    crashed_journal_ = dir_ + "/crashed.jsonl";
    std::remove(baseline_journal_.c_str());
    std::remove(crashed_journal_.c_str());
  }
  void TearDown() override {
    std::remove(baseline_journal_.c_str());
    std::remove(crashed_journal_.c_str());
  }

  [[nodiscard]] static std::string driver(const std::string& journal,
                                          int evaluations,
                                          int kill_after = 0) {
    std::string cmd = std::string(ATF_RESUME_DRIVER) + " '" + journal + "' " +
                      std::to_string(evaluations);
    if (kill_after != 0) {
      cmd += " " + std::to_string(kill_after);
    }
    return cmd;
  }

  std::string dir_, baseline_journal_, crashed_journal_;
};

TEST_F(ResumeTest, KilledAndResumedRunMatchesUninterruptedBaseline) {
  constexpr int kEvaluations = 40;
  constexpr int kKillAfter = 15;

  // Uninterrupted fixed-seed baseline.
  const command_result baseline =
      run_command(driver(baseline_journal_, kEvaluations));
  ASSERT_EQ(baseline.exit_code, 0) << baseline.stdout_text;
  const std::string baseline_best = field(baseline.stdout_text, "best");
  EXPECT_EQ(field(baseline.stdout_text, "evaluations"),
            std::to_string(kEvaluations));
  EXPECT_EQ(field(baseline.stdout_text, "store_hits"), "0");
  EXPECT_EQ(field(baseline.stdout_text, "run"), "run-1");

  // The same run, SIGKILLed from inside the cost function mid-search: the
  // process dies without unwinding, so only journal appends that reached
  // the kernel survive.
  const command_result killed =
      run_command(driver(crashed_journal_, kEvaluations, kKillAfter));
  EXPECT_NE(killed.exit_code, 0);  // died by signal, no summary printed
  EXPECT_EQ(killed.stdout_text.find("best="), std::string::npos);

  // Resume on the crashed journal. The fixed seed re-proposes the same
  // stream; the measured prefix is served from the store (never
  // re-measured), and the final best is the baseline's, to the last bit of
  // the %.17g rendering.
  const command_result resumed =
      run_command(driver(crashed_journal_, kEvaluations));
  ASSERT_EQ(resumed.exit_code, 0) << resumed.stdout_text;
  EXPECT_EQ(field(resumed.stdout_text, "best"), baseline_best);
  EXPECT_EQ(field(resumed.stdout_text, "evaluations"),
            std::to_string(kEvaluations));
  EXPECT_EQ(field(resumed.stdout_text, "run"), "run-2");

  // The killed run completed kKillAfter-1 appends before dying inside
  // measurement kKillAfter; every one of them must come back as a store
  // hit, and the resumed run must only measure the remainder.
  const int store_hits = std::atoi(field(resumed.stdout_text,
                                         "store_hits").c_str());
  const int measured = std::atoi(field(resumed.stdout_text,
                                       "measured").c_str());
  EXPECT_GE(store_hits, kKillAfter - 1);
  EXPECT_EQ(measured, kEvaluations - store_hits);
}

TEST_F(ResumeTest, SecondResumeServesEverythingFromTheStore) {
  constexpr int kEvaluations = 25;
  const command_result first =
      run_command(driver(baseline_journal_, kEvaluations));
  ASSERT_EQ(first.exit_code, 0);

  const command_result second =
      run_command(driver(baseline_journal_, kEvaluations));
  ASSERT_EQ(second.exit_code, 0) << second.stdout_text;
  EXPECT_EQ(field(second.stdout_text, "best"),
            field(first.stdout_text, "best"));
  EXPECT_EQ(field(second.stdout_text, "measured"), "0");
  EXPECT_EQ(field(second.stdout_text, "store_hits"),
            std::to_string(kEvaluations));
}

}  // namespace
