// result_store::merge and the supersedes total order — the multi-writer
// exchange primitive. The properties that matter: per-configuration
// winners are decided by record *content* only, so merging the same set of
// journals in any order or grouping yields the identical index; NaN never
// beats a number; and any two distinct records are strictly ordered (no
// coin flips).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "atf/session/journal.hpp"
#include "atf/session/result_store.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

namespace {

using atf::session::journal_read_report;
using atf::session::result_store;
using atf::session::tuning_record;
namespace json = atf::session::json;

tuning_record make_record(int x, double cost) {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(x));
  auto record = tuning_record::from_configuration(config);
  record.valid = true;
  record.scalar = cost;
  record.cost = json::value(cost);
  record.run_id = "run-a";
  record.sequence = 1;
  record.timestamp_ms = 1000;
  return record;
}

journal_read_report report_of(std::vector<tuning_record> records) {
  journal_read_report report;
  report.records = std::move(records);
  report.header_ok = true;
  return report;
}

TEST(Supersedes, ValidBeatsInvalidRegardlessOfRecency) {
  auto valid = make_record(1, 50.0);
  auto invalid = make_record(1, 0.0);
  invalid.valid = false;
  invalid.timestamp_ms = 9999;  // newer, still loses
  EXPECT_TRUE(result_store::supersedes(valid, invalid));
  EXPECT_FALSE(result_store::supersedes(invalid, valid));
}

TEST(Supersedes, NewerTimestampWins) {
  auto older = make_record(1, 10.0);
  auto newer = make_record(1, 90.0);  // worse scalar, but newer measurement
  newer.timestamp_ms = older.timestamp_ms + 1;
  EXPECT_TRUE(result_store::supersedes(newer, older));
  EXPECT_FALSE(result_store::supersedes(older, newer));
}

TEST(Supersedes, RunIdThenSequenceBreakTimestampTies) {
  auto a = make_record(1, 10.0);
  auto b = make_record(1, 10.0);
  b.run_id = "run-b";  // > "run-a"
  EXPECT_TRUE(result_store::supersedes(b, a));
  EXPECT_FALSE(result_store::supersedes(a, b));

  auto c = make_record(1, 10.0);
  c.sequence = 2;
  EXPECT_TRUE(result_store::supersedes(c, a));
}

TEST(Supersedes, NanNeverBeatsANumber) {
  auto number = make_record(1, 10.0);
  auto nan = make_record(1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(result_store::supersedes(number, nan));
  EXPECT_FALSE(result_store::supersedes(nan, number));
  // Two NaNs with otherwise identical provenance: the byte arbiter decides
  // one way, deterministically, and never both ways.
  auto nan2 = make_record(1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(result_store::supersedes(nan, nan2) &&
               result_store::supersedes(nan2, nan));
}

TEST(Supersedes, IdenticalRecordsDoNotSupersedeEachOther) {
  const auto a = make_record(1, 10.0);
  const auto b = make_record(1, 10.0);
  EXPECT_FALSE(result_store::supersedes(a, b));
  EXPECT_FALSE(result_store::supersedes(b, a));
}

TEST(Supersedes, DistinctRecordsAreStrictlyOrdered) {
  // Exactly one direction must hold for any content difference.
  auto a = make_record(1, 10.0);
  auto b = make_record(1, 10.0);
  b.technique = "annealing";  // only the payload differs -> byte arbiter
  EXPECT_NE(result_store::supersedes(a, b), result_store::supersedes(b, a));
}

TEST(Merge, CountsAddedSupersededIgnored) {
  result_store store;
  store.insert(make_record(1, 50.0));
  store.insert(make_record(2, 60.0));

  auto better2 = make_record(2, 30.0);
  better2.timestamp_ms = 2000;
  const auto stats = store.merge(
      report_of({make_record(1, 50.0),  // identical -> ignored
                 better2,               // newer -> supersedes
                 make_record(3, 70.0)}));  // unseen -> added
  EXPECT_EQ(stats.ignored, 1u);
  EXPECT_EQ(stats.superseded, 1u);
  EXPECT_EQ(stats.added, 1u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.best()->scalar, 30.0);
}

TEST(Merge, IsOrderAndGroupingIndependent) {
  auto a1 = make_record(1, 50.0);
  auto a2 = make_record(1, 40.0);
  a2.timestamp_ms = 2000;
  auto a3 = make_record(1, 45.0);
  a3.timestamp_ms = 2000;
  a3.run_id = "run-z";
  auto b1 = make_record(2, 10.0);
  auto b2 = make_record(2, 11.0);
  b2.sequence = 9;
  const std::vector<tuning_record> all = {a1, a2, a3, b1, b2};

  // Merge every permutation, in two different groupings, into fresh
  // stores: the latest-per-configuration index must come out identical.
  std::vector<int> order = {0, 1, 2, 3, 4};
  std::optional<std::pair<double, double>> expected;
  do {
    std::vector<tuning_record> permuted;
    for (const int i : order) {
      permuted.push_back(all[static_cast<std::size_t>(i)]);
    }
    // One shot...
    result_store one;
    one.merge(report_of(permuted));
    // ...and split into two batches.
    result_store two;
    two.merge(report_of({permuted[0], permuted[1]}));
    two.merge(report_of({permuted[2], permuted[3], permuted[4]}));

    ASSERT_EQ(one.size(), 2u);
    const auto key1 = all[0].config_hash;
    const auto key2 = all[3].config_hash;
    const std::pair<double, double> got = {one.find(key1)->scalar,
                                           one.find(key2)->scalar};
    EXPECT_EQ(two.find(key1)->scalar, got.first);
    EXPECT_EQ(two.find(key2)->scalar, got.second);
    if (!expected.has_value()) {
      expected = got;
    } else {
      EXPECT_EQ(*expected, got);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Merge, LosingRecordsAreNotInserted) {
  result_store store;
  auto current = make_record(1, 20.0);
  current.timestamp_ms = 5000;
  store.insert(current);

  store.merge(report_of({make_record(1, 5.0)}));  // older -> loses
  EXPECT_EQ(store.records().size(), 1u);
  EXPECT_EQ(store.find(current.config_hash)->scalar, 20.0);
}

}  // namespace
