// Helper binary for the kill-and-resume integration test: runs a fixed-seed
// random search over a deterministic arithmetic cost function against a
// session journal, optionally SIGKILLing itself from *inside* the cost
// function after a given number of fresh measurements — the most honest
// crash a test can stage, because it interrupts the writer wherever the
// append protocol happens to be.
//
// Usage: resume_driver <journal> <evaluations> [kill_after_measurements]
//
// On a completed run prints a parseable summary:
//   best=<scalar> evaluations=<n> store_hits=<n> measured=<n> run=<id>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "atf/atf.hpp"
#include "atf/search/random_search.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <journal> <evaluations> [kill_after]\n", argv[0]);
    return 2;
  }
  const std::string journal = argv[1];
  const auto evaluations = std::strtoull(argv[2], nullptr, 10);
  const auto kill_after =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0ull;

  auto x = atf::tp("x", atf::interval<int>(1, 50));
  auto y = atf::tp("y", atf::interval<int>(1, 8));

  unsigned long long measured = 0;
  atf::tuner tuner;
  const auto result =
      tuner.tuning_parameters(x, y)
          .search_technique(
              std::make_unique<atf::search::random_search>(0x5eed))
          .abort_condition(atf::cond::evaluations(evaluations))
          .session(journal)
          .tune([&](const atf::configuration& config) {
            ++measured;
            if (kill_after != 0 && measured >= kill_after) {
              // Die the way a crashed machine dies: no destructors, no
              // stdio flush — only what the journal already pushed to the
              // kernel survives.
              std::raise(SIGKILL);
            }
            const int xv = config["x"];
            const int yv = config["y"];
            return double((xv * 37 + yv * 11) % 101) + double(xv) / 1024.0;
          });

  std::printf("best=%.17g evaluations=%llu store_hits=%llu measured=%llu "
              "run=%s\n",
              result.best_cost.value_or(-1.0),
              static_cast<unsigned long long>(result.evaluations),
              static_cast<unsigned long long>(result.store_hits),
              measured, result.run_id.c_str());
  return 0;
}
