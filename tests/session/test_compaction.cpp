// journal_writer::compact(): the in-process contract (dedup to the latest
// record per configuration, preserved best, accurate stats, lock
// continuity) and the crash-safety contract — a SIGKILL at any point of
// the rewrite leaves either the complete old journal or the complete new
// one, because the new content is built in a sibling temp file and swapped
// in with one atomic rename. The crash cases run compact_driver as a real
// process (path injected via ATF_COMPACT_DRIVER).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include <sys/wait.h>

#include "atf/session/journal.hpp"
#include "atf/session/result_store.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

#ifndef ATF_COMPACT_DRIVER
#error "ATF_COMPACT_DRIVER must be defined by the build system"
#endif

namespace {

using atf::session::journal_writer;
using atf::session::read_journal;
using atf::session::result_store;
using atf::session::tuning_record;
namespace json = atf::session::json;

tuning_record make_record(int x, int round) {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(x));
  auto record = tuning_record::from_configuration(config);
  record.valid = true;
  record.scalar = 1000.0 - round * 10.0 - x;
  record.cost = json::value(record.scalar);
  record.run_id = "test";
  record.sequence = static_cast<std::uint64_t>(round * 100 + x);
  record.timestamp_ms = 1000 + round;
  return record;
}

class CompactionTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "atf_compact_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/journal.jsonl";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write_rounds(int configs, int rounds) {
    journal_writer writer(path_);
    for (int round = 0; round < rounds; ++round) {
      for (int x = 0; x < configs; ++x) {
        writer.append(make_record(x, round));
      }
    }
  }

  /// best-per-configuration map the compaction must preserve.
  std::map<std::uint64_t, double> latest_scalars() {
    std::map<std::uint64_t, double> latest;
    for (const auto& record :
         result_store::from_report(read_journal(path_)).latest_records()) {
      latest[record.config_hash] = record.scalar;
    }
    return latest;
  }

  /// Driver exit code; a signal-killed driver surfaces as 128+signal (the
  /// shell convention std::system's /bin/sh reports).
  int run_driver(const std::string& args) {
    const std::string command = std::string(ATF_COMPACT_DRIVER) + " '" +
                                path_ + "' " + args + " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

  std::string dir_, path_;
};

TEST_F(CompactionTest, KeepsOnlyTheLatestRecordPerConfiguration) {
  write_rounds(/*configs=*/4, /*rounds=*/5);
  const auto latest_before = latest_scalars();

  journal_writer writer(path_);
  const auto stats = writer.compact();
  EXPECT_EQ(stats.records_before, 20u);
  EXPECT_EQ(stats.records_after, 4u);
  EXPECT_LT(stats.bytes_after, stats.bytes_before);

  const auto report = read_journal(path_);
  EXPECT_TRUE(report.header_ok);
  EXPECT_EQ(report.corrupt_lines, 0u);
  EXPECT_FALSE(report.truncated_tail);
  ASSERT_EQ(report.records.size(), 4u);
  EXPECT_EQ(latest_scalars(), latest_before);
}

TEST_F(CompactionTest, CompactingACompactJournalIsANoOpRewrite) {
  write_rounds(3, 1);
  journal_writer writer(path_);
  const auto stats = writer.compact();
  EXPECT_EQ(stats.records_before, 3u);
  EXPECT_EQ(stats.records_after, 3u);
  EXPECT_EQ(read_journal(path_).records.size(), 3u);
}

TEST_F(CompactionTest, WriterStaysUsableAndLockedAcrossCompaction) {
  write_rounds(2, 3);
  journal_writer writer(path_);
  writer.compact();
  // Still exclusively locked: a second writer is refused.
  std::optional<journal_writer> second;
  EXPECT_THROW(second.emplace(path_), atf::session::journal_locked_error);
  // And still appendable: the handle now points at the new file.
  writer.append(make_record(7, 9));
  writer.flush();
  const auto report = read_journal(path_);
  EXPECT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records.back().scalar, 1000.0 - 90.0 - 7.0);
}

TEST_F(CompactionTest, EmptyJournalCompactsToEmpty) {
  journal_writer writer(path_);
  const auto stats = writer.compact();
  EXPECT_EQ(stats.records_before, 0u);
  EXPECT_EQ(stats.records_after, 0u);
  EXPECT_TRUE(read_journal(path_).records.empty());
  EXPECT_TRUE(read_journal(path_).header_ok);
}

// --- crash safety: a real process SIGKILLs itself mid-compaction ---------

class CompactionCrashTest : public CompactionTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(CompactionCrashTest, KillDuringTempWriteLeavesTheOldJournalIntact) {
  ASSERT_EQ(run_driver("prepare 4 5"), 0);
  const auto latest_before = latest_scalars();
  const auto size_before = std::filesystem::file_size(path_);

  // The driver dies inside compact() after the N-th temp record: the kill
  // arrives before the rename, so the original journal must be untouched.
  const int kill_point = GetParam();
  ASSERT_EQ(run_driver("kill-after-record " + std::to_string(kill_point)),
            128 + SIGKILL);

  EXPECT_EQ(std::filesystem::file_size(path_), size_before);
  const auto report = read_journal(path_);
  EXPECT_TRUE(report.header_ok);
  EXPECT_EQ(report.corrupt_lines, 0u);
  EXPECT_EQ(report.records.size(), 20u);
  EXPECT_EQ(latest_scalars(), latest_before);

  // A fresh writer can take over (the dead process's lock died with it)
  // and finish the job.
  ASSERT_EQ(run_driver("compact"), 0);
  EXPECT_EQ(read_journal(path_).records.size(), 4u);
  EXPECT_EQ(latest_scalars(), latest_before);
}

INSTANTIATE_TEST_SUITE_P(AtSeveralOffsets, CompactionCrashTest,
                         ::testing::Values(1, 2, 4));

TEST_F(CompactionTest, KillBeforeRenameLeavesTheOldJournalIntact) {
  ASSERT_EQ(run_driver("prepare 4 5"), 0);
  const auto latest_before = latest_scalars();

  // The temp file is fully written and synced; only the rename is missing.
  ASSERT_EQ(run_driver("kill-before-rename"), 128 + SIGKILL);

  const auto report = read_journal(path_);
  EXPECT_EQ(report.records.size(), 20u);
  EXPECT_EQ(report.corrupt_lines, 0u);
  EXPECT_EQ(latest_scalars(), latest_before);

  // The stale temp file must not break later writers — the constructor
  // sweeps it up and compaction completes.
  ASSERT_EQ(run_driver("compact"), 0);
  EXPECT_EQ(read_journal(path_).records.size(), 4u);
  EXPECT_EQ(latest_scalars(), latest_before);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".ctmp"));
}

}  // namespace
