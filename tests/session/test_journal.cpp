// The journal's robustness contract (journal.hpp): every flavour of damage
// a crashed or concurrent writer can inflict must degrade gracefully —
// fewer records, a diagnostic flag, never an exception from the reader and
// never a misread record.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "atf/session/journal.hpp"
#include "atf/session/json.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

namespace {

using atf::session::fsync_policy;
using atf::session::journal_read_report;
using atf::session::journal_writer;
using atf::session::read_journal;
using atf::session::tuning_record;
namespace json = atf::session::json;

tuning_record make_record(int x, double cost) {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(x));
  tuning_record record = tuning_record::from_configuration(config);
  record.valid = true;
  record.scalar = cost;
  record.cost = json::value(cost);
  record.run_id = "run-1";
  record.sequence = static_cast<std::uint64_t>(x);
  return record;
}

class JournalTest : public ::testing::Test {
protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "atf_journal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_records(int count) {
    journal_writer writer(path_);
    for (int i = 0; i < count; ++i) {
      writer.append(make_record(i, 100.0 - i));
    }
  }

  [[nodiscard]] std::string slurp() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void dump(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  std::string path_;
};

TEST_F(JournalTest, RoundTripsRecords) {
  write_records(3);
  const journal_read_report report = read_journal(path_);
  EXPECT_TRUE(report.header_ok);
  EXPECT_EQ(report.version, atf::session::journal_format_version);
  EXPECT_FALSE(report.version_mismatch);
  EXPECT_FALSE(report.truncated_tail);
  EXPECT_EQ(report.corrupt_lines, 0u);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records[0].scalar, 100.0);
  EXPECT_EQ(report.records[2].scalar, 98.0);
  EXPECT_EQ(report.records[1].to_configuration().get<int>("x"), 1);
}

TEST_F(JournalTest, MissingFileReadsAsEmpty) {
  const journal_read_report report = read_journal(path_);
  EXPECT_TRUE(report.records.empty());
  EXPECT_FALSE(report.header_ok);
  EXPECT_EQ(report.total_lines, 0u);
}

TEST_F(JournalTest, EmptyFileReadsAsEmpty) {
  dump("");
  const journal_read_report report = read_journal(path_);
  EXPECT_TRUE(report.records.empty());
  EXPECT_FALSE(report.header_ok);
}

TEST_F(JournalTest, TruncatedTailIsDroppedAndFlagged) {
  write_records(4);
  // Simulate a SIGKILL mid-append: chop the file mid-way through the last
  // line (strip the trailing newline plus a dozen bytes).
  std::string bytes = slurp();
  ASSERT_GT(bytes.size(), 13u);
  bytes.resize(bytes.size() - 13);
  dump(bytes);

  const journal_read_report report = read_journal(path_);
  EXPECT_TRUE(report.truncated_tail);
  EXPECT_EQ(report.corrupt_lines, 0u);  // a torn tail is not "corruption"
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records.back().scalar, 98.0);
}

TEST_F(JournalTest, CrcMismatchMidFileIsSkippedAndCounted) {
  write_records(3);
  // Flip one payload byte inside the middle record line (not its CRC
  // field): the guard must catch it and the reader must keep the rest.
  std::string bytes = slurp();
  const std::size_t second_line = bytes.find('\n', bytes.find('\n') + 1) + 1;
  const std::size_t scalar_pos = bytes.find("\"scalar\"", second_line);
  ASSERT_NE(scalar_pos, std::string::npos);
  bytes[scalar_pos + 9] ^= 0x01;
  dump(bytes);

  const journal_read_report report = read_journal(path_);
  EXPECT_EQ(report.corrupt_lines, 1u);
  EXPECT_FALSE(report.truncated_tail);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[0].scalar, 100.0);
  EXPECT_EQ(report.records[1].scalar, 98.0);
}

TEST_F(JournalTest, UnparsableLineMidFileIsSkippedAndCounted) {
  write_records(2);
  std::string bytes = slurp();
  const std::size_t first_record = bytes.find('\n') + 1;
  bytes.insert(first_record, "not json at all\n");
  dump(bytes);

  const journal_read_report report = read_journal(path_);
  EXPECT_EQ(report.corrupt_lines, 1u);
  EXPECT_EQ(report.records.size(), 2u);
}

TEST_F(JournalTest, NewerVersionYieldsNoRecordsAndAFlag) {
  json::value header{json::object{}};
  header.set("type", "header");
  header.set("magic", "atf-journal");
  header.set("version",
             std::uint64_t{atf::session::journal_format_version + 1});
  dump(atf::session::guard_line(header) + "\n" +
       atf::session::guard_line(to_json(make_record(1, 1.0))) + "\n");

  const journal_read_report report = read_journal(path_);
  EXPECT_TRUE(report.version_mismatch);
  EXPECT_TRUE(report.records.empty());

  // And the writer refuses to append to a journal it cannot re-read.
  EXPECT_THROW(journal_writer{path_}, atf::session::journal_version_error);
}

TEST_F(JournalTest, ConcurrentAppendIsRejected) {
  journal_writer first(path_);
  first.append(make_record(1, 1.0));
  // The append lock is per file, advisory and exclusive: a second writer —
  // same process or another one — must be turned away immediately, not
  // block and not interleave.
  std::optional<journal_writer> second;
  EXPECT_THROW(second.emplace(path_), atf::session::journal_locked_error);
}

TEST_F(JournalTest, LockIsReleasedOnDestruction) {
  { journal_writer first(path_); }
  journal_writer second(path_);  // must not throw
  second.append(make_record(2, 2.0));
  EXPECT_EQ(read_journal(path_).records.size(), 1u);
}

TEST_F(JournalTest, ReappendingAfterReopenExtendsTheFile) {
  write_records(2);
  {
    journal_writer writer(path_);
    writer.append(make_record(7, 93.0));
  }
  const journal_read_report report = read_journal(path_);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_EQ(report.records.back().scalar, 93.0);
  // Exactly one header even after three opens.
  EXPECT_EQ(report.total_lines, 4u);
}

TEST_F(JournalTest, FsyncPoliciesAllProduceReadableJournals) {
  for (const fsync_policy policy :
       {fsync_policy::none, fsync_policy::flush, fsync_policy::full_sync}) {
    std::remove(path_.c_str());
    {
      journal_writer writer(path_, policy);
      writer.append(make_record(1, 1.0));
      writer.flush();
    }
    EXPECT_EQ(read_journal(path_).records.size(), 1u)
        << "policy=" << static_cast<int>(policy);
  }
}

TEST_F(JournalTest, FsyncSupportIsIndependentOfFlockSupport) {
  // Regression: full_sync's fsync used to be gated behind the *flock*
  // feature macro, so a platform with fsync but without <sys/file.h>
  // silently lost the durability it asked for. The two capabilities are
  // now probed separately; on the Unix systems CI runs on, both hold.
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(atf::session::fsync_supported());
#endif
  // fsync support must never be conditioned on flock support: asking for
  // it is legal (and a no-op at worst) regardless of locking.
  if (atf::session::flock_supported()) {
    EXPECT_TRUE(atf::session::fsync_supported())
        << "flock implies a POSIX fd layer, which provides fsync";
  }
  // And full_sync journals stay readable wherever we run.
  {
    journal_writer writer(path_, fsync_policy::full_sync);
    writer.append(make_record(3, 3.0));
    writer.flush();
  }
  EXPECT_EQ(read_journal(path_).records.size(), 1u);
}

TEST_F(JournalTest, GuardLineVerifiesByteExactly) {
  json::value obj{json::object{}};
  obj.set("type", "record");
  const std::string line = atf::session::guard_line(obj);
  // The guard splices the crc field before the closing brace.
  EXPECT_NE(line.find(",\"crc\":\""), std::string::npos);
  EXPECT_EQ(line.back(), '}');
}

}  // namespace
