// The result store's index and query helpers: latest-wins per hash, best /
// top-k over valid records only, per-technique stats, run ids in first-seen
// order.
#include <gtest/gtest.h>

#include <string>

#include "atf/configuration.hpp"
#include "atf/session/result_store.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

namespace {

using atf::session::result_store;
using atf::session::tuning_record;
namespace json = atf::session::json;

tuning_record make_record(int x, double cost, bool valid = true,
                          const std::string& technique = "exhaustive",
                          const std::string& run = "run-1") {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(x));
  tuning_record record = tuning_record::from_configuration(config);
  record.valid = valid;
  if (valid) {
    record.scalar = cost;
    record.cost = json::value(cost);
  } else {
    record.failure = "boom";
  }
  record.technique = technique;
  record.run_id = run;
  return record;
}

TEST(ResultStore, FindsLatestRecordPerHash) {
  result_store store;
  store.insert(make_record(1, 10.0));
  store.insert(make_record(2, 20.0));
  store.insert(make_record(1, 5.0));  // re-measurement supersedes

  EXPECT_EQ(store.size(), 2u);           // distinct configurations
  EXPECT_EQ(store.records().size(), 3u); // journal keeps both measurements

  const std::uint64_t hash = make_record(1, 0.0).config_hash;
  const tuning_record* found = store.find(hash);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->scalar, 5.0);
  EXPECT_FALSE(store.contains(make_record(99, 0.0).config_hash));
}

TEST(ResultStore, BestIgnoresInvalidAndSupersededRecords) {
  result_store store;
  EXPECT_FALSE(store.best().has_value());

  store.insert(make_record(1, 3.0, /*valid=*/false));
  EXPECT_FALSE(store.best().has_value());  // a failure is never "best"

  store.insert(make_record(2, 7.0));
  store.insert(make_record(3, 4.0));
  ASSERT_TRUE(store.best().has_value());
  EXPECT_EQ(store.best()->scalar, 4.0);

  // Superseding the best configuration with a worse re-measurement moves
  // the best elsewhere: only the latest record per hash counts.
  store.insert(make_record(3, 9.0));
  EXPECT_EQ(store.best()->scalar, 7.0);
}

TEST(ResultStore, TopKIsAscendingAndClamped) {
  result_store store;
  store.insert(make_record(1, 5.0));
  store.insert(make_record(2, 1.0));
  store.insert(make_record(3, 3.0));
  store.insert(make_record(4, 2.0, /*valid=*/false));

  const auto top = store.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].scalar, 1.0);
  EXPECT_EQ(top[1].scalar, 3.0);

  EXPECT_EQ(store.top_k(100).size(), 3u);  // invalid record excluded
  EXPECT_TRUE(store.top_k(0).empty());
}

TEST(ResultStore, CountsValidAndInvalid) {
  result_store store;
  store.insert(make_record(1, 1.0));
  store.insert(make_record(2, 2.0, /*valid=*/false));
  store.insert(make_record(3, 3.0));
  EXPECT_EQ(store.valid_count(), 2u);
  EXPECT_EQ(store.invalid_count(), 1u);
}

TEST(ResultStore, PerTechniqueStats) {
  result_store store;
  store.insert(make_record(1, 5.0, true, "random_search"));
  store.insert(make_record(2, 3.0, true, "random_search"));
  store.insert(make_record(3, 0.0, false, "random_search"));
  store.insert(make_record(4, 1.0, true, "simulated_annealing"));

  const auto stats = store.per_technique();
  ASSERT_EQ(stats.size(), 2u);
  const auto& random = stats.at("random_search");
  EXPECT_EQ(random.measured, 3u);
  EXPECT_EQ(random.failed, 1u);
  EXPECT_TRUE(random.has_best);
  EXPECT_EQ(random.best_scalar, 3.0);
  const auto& annealing = stats.at("simulated_annealing");
  EXPECT_EQ(annealing.measured, 1u);
  EXPECT_EQ(annealing.failed, 0u);
  EXPECT_EQ(annealing.best_scalar, 1.0);
}

TEST(ResultStore, RunIdsInFirstSeenOrder) {
  result_store store;
  store.insert(make_record(1, 1.0, true, "t", "run-2"));
  store.insert(make_record(2, 2.0, true, "t", "run-1"));
  store.insert(make_record(3, 3.0, true, "t", "run-2"));
  const auto runs = store.run_ids();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], "run-2");
  EXPECT_EQ(runs[1], "run-1");
}

}  // namespace
