// The result store's index and query helpers: latest-wins per hash, best /
// top-k over valid records only, per-technique stats, run ids in first-seen
// order.
#include <gtest/gtest.h>

#include <string>

#include "atf/configuration.hpp"
#include "atf/session/result_store.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

namespace {

using atf::session::result_store;
using atf::session::tuning_record;
namespace json = atf::session::json;

tuning_record make_record(int x, double cost, bool valid = true,
                          const std::string& technique = "exhaustive",
                          const std::string& run = "run-1") {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(x));
  tuning_record record = tuning_record::from_configuration(config);
  record.valid = valid;
  if (valid) {
    record.scalar = cost;
    record.cost = json::value(cost);
  } else {
    record.failure = "boom";
  }
  record.technique = technique;
  record.run_id = run;
  return record;
}

TEST(ResultStore, FindsLatestRecordPerHash) {
  result_store store;
  store.insert(make_record(1, 10.0));
  store.insert(make_record(2, 20.0));
  store.insert(make_record(1, 5.0));  // re-measurement supersedes

  EXPECT_EQ(store.size(), 2u);           // distinct configurations
  EXPECT_EQ(store.records().size(), 3u); // journal keeps both measurements

  const std::uint64_t hash = make_record(1, 0.0).config_hash;
  const tuning_record* found = store.find(hash);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->scalar, 5.0);
  EXPECT_FALSE(store.contains(make_record(99, 0.0).config_hash));
}

TEST(ResultStore, BestIgnoresInvalidAndSupersededRecords) {
  result_store store;
  EXPECT_FALSE(store.best().has_value());

  store.insert(make_record(1, 3.0, /*valid=*/false));
  EXPECT_FALSE(store.best().has_value());  // a failure is never "best"

  store.insert(make_record(2, 7.0));
  store.insert(make_record(3, 4.0));
  ASSERT_TRUE(store.best().has_value());
  EXPECT_EQ(store.best()->scalar, 4.0);

  // Superseding the best configuration with a worse re-measurement moves
  // the best elsewhere: only the latest record per hash counts.
  store.insert(make_record(3, 9.0));
  EXPECT_EQ(store.best()->scalar, 7.0);
}

TEST(ResultStore, TopKIsAscendingAndClamped) {
  result_store store;
  store.insert(make_record(1, 5.0));
  store.insert(make_record(2, 1.0));
  store.insert(make_record(3, 3.0));
  store.insert(make_record(4, 2.0, /*valid=*/false));

  const auto top = store.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].scalar, 1.0);
  EXPECT_EQ(top[1].scalar, 3.0);

  EXPECT_EQ(store.top_k(100).size(), 3u);  // invalid record excluded
  EXPECT_TRUE(store.top_k(0).empty());
}

TEST(ResultStore, CountsValidAndInvalid) {
  result_store store;
  store.insert(make_record(1, 1.0));
  store.insert(make_record(2, 2.0, /*valid=*/false));
  store.insert(make_record(3, 3.0));
  EXPECT_EQ(store.valid_count(), 2u);
  EXPECT_EQ(store.invalid_count(), 1u);
}

TEST(ResultStore, PerTechniqueStats) {
  result_store store;
  store.insert(make_record(1, 5.0, true, "random_search"));
  store.insert(make_record(2, 3.0, true, "random_search"));
  store.insert(make_record(3, 0.0, false, "random_search"));
  store.insert(make_record(4, 1.0, true, "simulated_annealing"));

  const auto stats = store.per_technique();
  ASSERT_EQ(stats.size(), 2u);
  const auto& random = stats.at("random_search");
  EXPECT_EQ(random.measured, 3u);
  EXPECT_EQ(random.failed, 1u);
  EXPECT_TRUE(random.has_best);
  EXPECT_EQ(random.best_scalar, 3.0);
  const auto& annealing = stats.at("simulated_annealing");
  EXPECT_EQ(annealing.measured, 1u);
  EXPECT_EQ(annealing.failed, 0u);
  EXPECT_EQ(annealing.best_scalar, 1.0);
}

TEST(ResultStore, LatestRecordsDropSupersededKeepJournalOrder) {
  result_store store;
  store.insert(make_record(1, 10.0));
  store.insert(make_record(2, 20.0));
  store.insert(make_record(1, 5.0));   // supersedes the first insert
  store.insert(make_record(3, 30.0));
  store.insert(make_record(2, 25.0));  // supersedes the second insert

  const auto latest = store.latest_records();
  ASSERT_EQ(latest.size(), 3u);
  // Order is the journal position of each configuration's *latest*
  // measurement — not first-seen order: x=1's re-measurement comes before
  // x=3, and x=2's comes after.
  EXPECT_EQ(latest[0].scalar, 5.0);
  EXPECT_EQ(latest[1].scalar, 30.0);
  EXPECT_EQ(latest[2].scalar, 25.0);
}

TEST(ResultStore, MergedJournalsGroupPerConfigurationLatestWins) {
  // Two runs' journals merged into one store (the dispatcher's per-size
  // warm-start view): the same configuration measured by both runs
  // resolves to the later run's record, and per-run grouping survives.
  result_store store;
  store.insert(make_record(1, 10.0, true, "t", "run-1"));
  store.insert(make_record(2, 20.0, true, "t", "run-1"));
  store.insert(make_record(1, 12.0, true, "t", "run-2"));
  store.insert(make_record(3, 8.0, true, "t", "run-2"));

  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.records().size(), 4u);
  const tuning_record* merged = store.find(make_record(1, 0.0).config_hash);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->run_id, "run-2");
  EXPECT_EQ(merged->scalar, 12.0);

  const auto runs = store.run_ids();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], "run-1");
  EXPECT_EQ(runs[1], "run-2");

  // best() sees run-2's fresher (worse) re-measurement, not run-1's stale
  // 10.0: the nominal best is x=3 at 8.0.
  ASSERT_TRUE(store.best().has_value());
  EXPECT_EQ(store.best()->scalar, 8.0);
}

TEST(ResultStore, TopKTieBreaksOnConfigHashDeterministically) {
  result_store store;
  store.insert(make_record(5, 2.0));
  store.insert(make_record(9, 2.0));  // same scalar, different hash
  store.insert(make_record(7, 2.0));
  store.insert(make_record(3, 1.0));

  const auto top = store.top_k(4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].scalar, 1.0);
  // The three ties are ordered by config_hash ascending — independent of
  // insertion order and of unordered_map iteration order.
  EXPECT_LT(top[1].config_hash, top[2].config_hash);
  EXPECT_LT(top[2].config_hash, top[3].config_hash);

  // The same records inserted in a different order produce the same top-k.
  result_store reordered;
  reordered.insert(make_record(3, 1.0));
  reordered.insert(make_record(7, 2.0));
  reordered.insert(make_record(9, 2.0));
  reordered.insert(make_record(5, 2.0));
  const auto top2 = reordered.top_k(4);
  ASSERT_EQ(top2.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(top[i].config_hash, top2[i].config_hash) << "rank " << i;
  }
}

TEST(ResultStore, TopKTieAcrossSupersededMeasurementUsesLatestScalar) {
  // A configuration re-measured to tie another: the tie-break still works
  // off the *latest* scalar, and the superseded value never resurfaces.
  result_store store;
  store.insert(make_record(1, 9.0));
  store.insert(make_record(2, 4.0));
  store.insert(make_record(1, 4.0));  // now ties x=2

  const auto top = store.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].scalar, 4.0);
  EXPECT_EQ(top[1].scalar, 4.0);
  EXPECT_LT(top[0].config_hash, top[1].config_hash);
}

TEST(ResultStore, RunIdsInFirstSeenOrder) {
  result_store store;
  store.insert(make_record(1, 1.0, true, "t", "run-2"));
  store.insert(make_record(2, 2.0, true, "t", "run-1"));
  store.insert(make_record(3, 3.0, true, "t", "run-2"));
  const auto runs = store.run_ids();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], "run-2");
  EXPECT_EQ(runs[1], "run-1");
}

}  // namespace
