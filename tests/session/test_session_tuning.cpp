// The session subsystem end to end through the tuner: warm-start resume
// serves store hits instead of re-measuring, the prior best seeds the best
// tracker, the abort condition is credited for replayed points, runs get
// distinct ids, the CSV log carries run/source provenance, a locked journal
// degrades instead of aborting, and the fault policy turns throwing and
// overlong cost functions into recorded failures.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "atf/atf.hpp"
#include "atf/session/journal.hpp"
#include "atf/session/session.hpp"

namespace {

class SessionTuningTest : public ::testing::Test {
protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "atf_session_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // cost(x) = (x-7)^2, minimum at x=7 within [1,10].
  static atf::tuner make_tuner() {
    atf::tuner t;
    auto x = atf::tp("x", atf::interval<int>(1, 10));
    t.tuning_parameters(x);
    return t;
  }

  static double cost_of(const atf::configuration& config) {
    const int x = config["x"];
    return double((x - 7) * (x - 7));
  }

  std::string path_;
};

TEST_F(SessionTuningTest, WarmStartServesStoreHitsWithoutReMeasuring) {
  int first_calls = 0;
  {
    auto t = make_tuner();
    const auto result = t.session(path_).tune([&](const auto& config) {
      ++first_calls;
      return cost_of(config);
    });
    EXPECT_EQ(first_calls, 10);
    EXPECT_EQ(result.store_hits, 0u);
    EXPECT_EQ(result.run_id, "run-1");
    EXPECT_EQ(result.best_cost, 0.0);
  }

  int second_calls = 0;
  auto t = make_tuner();
  const auto result = t.session(path_).tune([&](const auto& config) {
    ++second_calls;
    return cost_of(config);
  });
  // Every configuration was measured by run-1: the whole sweep is served
  // from the replayed store, the cost function never runs, and the abort
  // condition (one full sweep) is still credited with 10 evaluations.
  EXPECT_EQ(second_calls, 0);
  EXPECT_EQ(result.evaluations, 10u);
  EXPECT_EQ(result.store_hits, 10u);
  EXPECT_EQ(result.run_id, "run-2");
  EXPECT_EQ(result.best_cost, 0.0);
  EXPECT_EQ(result.best_configuration().get<int>("x"), 7);
}

TEST_F(SessionTuningTest, PriorBestSeedsTheResultEvenIfNotReProposed) {
  {
    auto t = make_tuner();
    (void)t.session(path_).tune(
        [&](const auto& config) { return cost_of(config); });
  }
  // The resumed run is allowed a single evaluation — exhaustive proposes
  // x=1 (cost 36) — yet the result reports run-1's optimum from the store.
  auto t = make_tuner();
  const auto result =
      t.session(path_)
          .abort_condition(atf::cond::evaluations(1))
          .tune([&](const auto& config) { return cost_of(config); });
  EXPECT_EQ(result.evaluations, 1u);
  EXPECT_EQ(result.best_cost, 0.0);
  EXPECT_EQ(result.best_configuration().get<int>("x"), 7);
}

TEST_F(SessionTuningTest, JournalRecordsProvenance) {
  {
    auto t = make_tuner();
    (void)t.session(path_).tune(
        [&](const auto& config) { return cost_of(config); });
  }
  const auto report = atf::session::read_journal(path_);
  ASSERT_EQ(report.records.size(), 10u);
  for (const auto& record : report.records) {
    EXPECT_EQ(record.run_id, "run-1");
    EXPECT_EQ(record.technique, "exhaustive");
    EXPECT_TRUE(record.valid);
    EXPECT_GT(record.timestamp_ms, 0);
  }
  EXPECT_EQ(report.records.front().sequence, 1u);
  EXPECT_EQ(report.records.back().sequence, 10u);

  const auto stats =
      atf::session::result_store::from_report(report).per_technique();
  ASSERT_EQ(stats.count("exhaustive"), 1u);
  EXPECT_EQ(stats.at("exhaustive").measured, 10u);
  EXPECT_EQ(stats.at("exhaustive").best_scalar, 0.0);
}

TEST_F(SessionTuningTest, CsvLogCarriesRunAndSource) {
  const std::string csv = path_ + ".csv";
  {
    auto t = make_tuner();
    (void)t.session(path_).tune(
        [&](const auto& config) { return cost_of(config); });
  }
  {
    auto t = make_tuner();
    (void)t.session(path_).log_file(csv).tune(
        [&](const auto& config) { return cost_of(config); });
  }
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "evaluation,elapsed_ns,index,x,cost,valid,run,source");
  int store_rows = 0;
  for (std::string line; std::getline(in, line);) {
    EXPECT_NE(line.find(",run-2,"), std::string::npos) << line;
    if (line.size() >= 6 && line.rfind(",store") == line.size() - 6) {
      ++store_rows;
    }
  }
  EXPECT_EQ(store_rows, 10);
  std::remove(csv.c_str());
}

TEST_F(SessionTuningTest, LockedJournalDegradesInsteadOfAborting) {
  // Another writer holds the journal: tuning must proceed, just without
  // persistence.
  atf::session::journal_writer holder(path_);
  auto t = make_tuner();
  t.session(path_);
  ASSERT_NE(t.current_session(), nullptr);
  EXPECT_FALSE(t.current_session()->persistent());
  EXPECT_FALSE(t.current_session()->degraded_reason().empty());

  int calls = 0;
  const auto result = t.tune([&](const auto& config) {
    ++calls;
    return cost_of(config);
  });
  EXPECT_EQ(calls, 10);
  EXPECT_EQ(result.best_cost, 0.0);
  // Nothing leaked past the lock holder into the file.
  EXPECT_TRUE(atf::session::read_journal(path_).records.empty());
}

struct opaque_cost {
  double v = 0.0;
  friend bool operator<(const opaque_cost& a, const opaque_cost& b) {
    return a.v < b.v;
  }
};

}  // namespace

// cost_traits must live in atf's namespace for the tuner to scalarize the
// opaque type; no session::cost_codec is provided on purpose.
template <>
struct atf::cost_traits<opaque_cost> {
  static double scalar(const opaque_cost& c) { return c.v; }
  static std::string describe(const opaque_cost& c) {
    return std::to_string(c.v);
  }
};

namespace {

TEST_F(SessionTuningTest, CostTypeWithoutCodecRunsNonPersistently) {
  auto t = make_tuner();
  const auto result = t.session(path_).tune([&](const auto& config) {
    return opaque_cost{cost_of(config)};
  });
  EXPECT_EQ(result.best_cost->v, 0.0);
  // The session was dropped (with a warning): no records were journaled.
  EXPECT_TRUE(atf::session::read_journal(path_).records.empty());
}

TEST_F(SessionTuningTest, CostPairSurvivesTheRoundTrip) {
  {
    auto t = make_tuner();
    (void)t.session(path_).tune([&](const auto& config) {
      return atf::cost_pair{cost_of(config), 0.5};
    });
  }
  auto t = make_tuner();
  int calls = 0;
  const auto result = t.session(path_).tune([&](const auto& config) {
    ++calls;
    return atf::cost_pair{cost_of(config), 0.5};
  });
  EXPECT_EQ(calls, 0);
  ASSERT_TRUE(result.best_cost.has_value());
  EXPECT_EQ(result.best_cost->primary, 0.0);
  EXPECT_EQ(result.best_cost->secondary, 0.5);  // the tie-breaker survived
}

TEST_F(SessionTuningTest, EvaluationErrorIsJournaledAsInvalid) {
  auto t = make_tuner();
  const auto result = t.session(path_).tune([&](const auto& config) -> double {
    const int x = config["x"];
    if (x % 2 == 0) {
      throw atf::evaluation_error("even x rejected");
    }
    return cost_of(config);
  });
  EXPECT_EQ(result.failed_evaluations, 5u);
  const auto report = atf::session::read_journal(path_);
  ASSERT_EQ(report.records.size(), 10u);
  int invalid = 0;
  for (const auto& record : report.records) {
    if (!record.valid) {
      ++invalid;
      EXPECT_EQ(record.failure, "even x rejected");
    }
  }
  EXPECT_EQ(invalid, 5);
}

TEST(FaultPolicy, ForeignExceptionsPropagateByDefault) {
  auto x = atf::tp("x", atf::interval<int>(1, 4));
  atf::tuner t;
  t.tuning_parameters(x);
  EXPECT_THROW((void)t.tune([](const auto&) -> double {
                 throw std::runtime_error("segfaulting toolchain");
               }),
               std::runtime_error);
}

TEST(FaultPolicy, CatchAllRecordsForeignExceptionsAsFailures) {
  auto x = atf::tp("x", atf::interval<int>(1, 4));
  atf::fault_policy faults;
  faults.catch_all = true;
  atf::tuner t;
  int calls = 0;
  const auto result = t.tuning_parameters(x).fault_tolerance(faults).tune(
      [&](const auto& config) -> double {
        ++calls;
        const int value = config["x"];
        if (value != 3) {
          throw std::runtime_error("segfaulting toolchain");
        }
        return 1.0;
      });
  EXPECT_EQ(calls, 4);  // the tuner survived all three throws
  EXPECT_EQ(result.failed_evaluations, 3u);
  EXPECT_EQ(result.best_cost, 1.0);
  EXPECT_EQ(result.best_configuration().get<int>("x"), 3);
}

TEST(FaultPolicy, RetriesTransientFailures) {
  auto x = atf::tp("x", atf::set(1));
  atf::fault_policy faults;
  faults.max_retries = 2;
  atf::tuner t;
  int calls = 0;
  const auto result = t.tuning_parameters(x).fault_tolerance(faults).tune(
      [&](const auto&) -> double {
        if (++calls < 3) {
          throw atf::evaluation_error("flaky device");
        }
        return 42.0;
      });
  EXPECT_EQ(calls, 3);  // two retries after the initial failure
  EXPECT_EQ(result.failed_evaluations, 0u);
  EXPECT_EQ(result.best_cost, 42.0);
}

TEST(FaultPolicy, RetriesAreBounded) {
  auto x = atf::tp("x", atf::set(1));
  atf::fault_policy faults;
  faults.max_retries = 2;
  atf::tuner t;
  int calls = 0;
  const auto result = t.tuning_parameters(x).fault_tolerance(faults).tune(
      [&](const auto&) -> double {
        ++calls;
        throw atf::evaluation_error("always failing");
      });
  EXPECT_EQ(calls, 3);  // 1 + max_retries, then recorded invalid
  EXPECT_EQ(result.failed_evaluations, 1u);
  EXPECT_FALSE(result.has_best());
}

TEST(FaultPolicy, PostHocTimeoutRecordsOverlongEvaluationsInvalid) {
  auto x = atf::tp("x", atf::interval<int>(1, 2));
  atf::fault_policy faults;
  faults.timeout = std::chrono::milliseconds(20);
  faults.max_retries = 5;  // timeouts must NOT be retried
  atf::tuner t;
  int calls = 0;
  const auto result = t.tuning_parameters(x).fault_tolerance(faults).tune(
      [&](const auto& config) -> double {
        ++calls;
        const int value = config["x"];
        if (value == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        return double(value);
      });
  EXPECT_EQ(calls, 2);  // the overlong call completed once, no retries
  EXPECT_EQ(result.failed_evaluations, 1u);
  EXPECT_EQ(result.best_cost, 2.0);  // the timed-out result was discarded
}

TEST(FaultPolicy, PenaltyIsReportedToTheTechnique) {
  // A capture technique records what the engine reports back.
  class capture final : public atf::search_technique {
  public:
    explicit capture(std::vector<double>* sink) : sink_(sink) {}
    [[nodiscard]] const char* name() const override { return "capture"; }
    [[nodiscard]] atf::configuration get_next_config() override {
      return space().config_at(next_++ % space().size());
    }
    void report_cost(double cost) override { sink_->push_back(cost); }

  private:
    std::vector<double>* sink_;
    std::uint64_t next_ = 0;
  };

  auto x = atf::tp("x", atf::interval<int>(1, 2));
  atf::fault_policy faults;
  faults.penalty = 999.0;
  std::vector<double> reported;
  atf::tuner t;
  (void)t.tuning_parameters(x)
      .search_technique(std::make_unique<capture>(&reported))
      .fault_tolerance(faults)
      .tune([](const auto& config) -> double {
        const int value = config["x"];
        if (value == 1) {
          throw atf::evaluation_error("invalid");
        }
        return double(value);
      });
  ASSERT_EQ(reported.size(), 2u);
  EXPECT_EQ(reported[0], 999.0);  // the finite penalty, not +inf
  EXPECT_EQ(reported[1], 2.0);
}

}  // namespace
