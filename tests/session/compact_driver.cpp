// Helper binary for the compaction crash-safety suite: builds a journal
// with superseding duplicates, then compacts it, SIGKILLing itself from
// inside the compaction hooks at a chosen point — after the N-th record is
// written to the temp file, or on the brink of the atomic rename. The
// parent test then checks the invariant: whatever the kill point, the
// journal on disk is either the complete old file or the complete new one,
// never a hybrid, and best-per-configuration is preserved.
//
// Usage: compact_driver <journal> <mode> [arg]
//   prepare <configs> <rounds>  write configs*rounds records (rounds
//                               supersessions per configuration) and exit 0
//   kill-after-record <n>       compact, SIGKILL after temp record n
//   kill-before-rename          compact, SIGKILL just before the rename
//   compact                     compact to completion, print stats, exit 0
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "atf/session/journal.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

namespace {

atf::session::tuning_record make_record(int x, int round) {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(x));
  auto record = atf::session::tuning_record::from_configuration(config);
  record.valid = true;
  // Later rounds are better: compaction must keep the last round.
  record.scalar = 1000.0 - round * 10.0 - x;
  record.cost = atf::session::json::value(record.scalar);
  record.run_id = "driver";
  record.sequence = static_cast<std::uint64_t>(round * 100 + x);
  record.timestamp_ms = 1000 + round;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <journal> prepare <configs> <rounds> |\n"
                 "       %s <journal> kill-after-record <n> |\n"
                 "       %s <journal> kill-before-rename | compact\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string journal = argv[1];
  const std::string mode = argv[2];

  if (mode == "prepare") {
    if (argc < 5) {
      return 2;
    }
    const int configs = std::atoi(argv[3]);
    const int rounds = std::atoi(argv[4]);
    atf::session::journal_writer writer(journal);
    for (int round = 0; round < rounds; ++round) {
      for (int x = 0; x < configs; ++x) {
        writer.append(make_record(x, round));
      }
    }
    return 0;
  }

  atf::session::journal_writer writer(journal);
  atf::session::compact_hooks hooks;
  if (mode == "kill-after-record") {
    const auto kill_at = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    hooks.after_record = [kill_at](std::size_t written) {
      if (written >= kill_at) {
        std::raise(SIGKILL);
      }
    };
  } else if (mode == "kill-before-rename") {
    hooks.before_rename = [] { std::raise(SIGKILL); };
  } else if (mode != "compact") {
    return 2;
  }
  const auto stats = writer.compact(hooks);
  std::printf("before=%zu after=%zu bytes_before=%zu bytes_after=%zu\n",
              stats.records_before, stats.records_after, stats.bytes_before,
              stats.bytes_after);
  return 0;
}
