// packed_u64_vector: fixed-width bit-packing behind the packed space-storage
// backend. The tests pin the width selection, word-boundary straddling, the
// zero-width fast path and exact round-trips at every width.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "atf/common/bitpack.hpp"

namespace {

using atf::common::packed_u64_vector;

TEST(Bitpack, EmptyVector) {
  const auto packed = packed_u64_vector::pack(std::vector<std::uint64_t>{});
  EXPECT_EQ(packed.size(), 0u);
  EXPECT_TRUE(packed.empty());
  EXPECT_EQ(packed.width(), 0u);
  EXPECT_EQ(packed.memory_bytes(), 0u);
}

TEST(Bitpack, AllZerosStoreNothing) {
  const std::vector<std::uint64_t> zeros(1000, 0);
  const auto packed = packed_u64_vector::pack(zeros);
  EXPECT_EQ(packed.size(), 1000u);
  EXPECT_EQ(packed.width(), 0u);
  EXPECT_EQ(packed.memory_bytes(), 0u);
  for (std::size_t i = 0; i < zeros.size(); ++i) {
    EXPECT_EQ(packed[i], 0u);
  }
}

TEST(Bitpack, WidthIsBitWidthOfMaximum) {
  EXPECT_EQ(packed_u64_vector::pack(std::vector<std::uint64_t>{1}).width(),
            1u);
  EXPECT_EQ(packed_u64_vector::pack(std::vector<std::uint64_t>{0, 7}).width(),
            3u);
  EXPECT_EQ(packed_u64_vector::pack(std::vector<std::uint64_t>{8}).width(),
            4u);
  EXPECT_EQ(packed_u64_vector::pack(
                std::vector<std::uint64_t>{0xffffffffffffffffull})
                .width(),
            64u);
}

TEST(Bitpack, RoundTripAcrossWordBoundaries) {
  // Width 13 guarantees elements straddle 64-bit word boundaries.
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    values.push_back((i * 2654435761ull) % 8192);
  }
  const auto packed = packed_u64_vector::pack(values);
  EXPECT_EQ(packed.width(), 13u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(packed[i], values[i]) << "at index " << i;
  }
}

TEST(Bitpack, RoundTripAtEveryWidth) {
  for (std::uint32_t width = 1; width <= 64; ++width) {
    const std::uint64_t max =
        width == 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << width) - 1;
    std::vector<std::uint64_t> values{max, 0, max, 1, max / 2, max, 0, max};
    const auto packed = packed_u64_vector::pack(values);
    ASSERT_EQ(packed.width(), width);
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(packed[i], values[i])
          << "width " << width << " index " << i;
    }
  }
}

TEST(Bitpack, PacksNarrowerElementTypes) {
  const std::vector<std::uint32_t> values{3, 1, 4, 1, 5, 9, 2, 6};
  const auto packed = packed_u64_vector::pack(values);
  EXPECT_EQ(packed.width(), 4u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(packed[i], values[i]);
  }
}

TEST(Bitpack, MemoryIsProportionalToWidth) {
  const std::vector<std::uint64_t> narrow(10000, 1);
  std::vector<std::uint64_t> wide(10000);
  for (std::size_t i = 0; i < wide.size(); ++i) {
    wide[i] = 0xffffffffull + i;
  }
  const auto packed_narrow = packed_u64_vector::pack(narrow);
  const auto packed_wide = packed_u64_vector::pack(wide);
  // 1-bit elements: 10000 bits ~ 1250 bytes; 34-bit: ~42.5 KB.
  EXPECT_LE(packed_narrow.memory_bytes(), 1300u);
  EXPECT_GE(packed_wide.memory_bytes(), 40000u);
  // Both are far below the 80 KB of the unpacked u64 vector.
  EXPECT_LT(packed_wide.memory_bytes(), 10000 * sizeof(std::uint64_t));
}

}  // namespace
