// Unit tests for the common utilities: RNG, math helpers, statistics,
// string utilities, thread pool and CSV writer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "atf/common/csv_writer.hpp"
#include "atf/common/math_utils.hpp"
#include "atf/common/rng.hpp"
#include "atf/common/statistics.hpp"
#include "atf/common/string_utils.hpp"
#include "atf/common/thread_pool.hpp"

namespace {

using namespace atf::common;

TEST(Rng, DeterministicForSameSeed) {
  xoshiro256 a(123);
  xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  xoshiro256 a(1);
  xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowIsInRangeAndCoversAllValues) {
  xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenIsInclusive) {
  xoshiro256 rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BelowZeroBoundIsFullRangeNotDivisionByZero) {
  // bound == 0 used to compute (0 - bound) % bound — a modulo by zero. It is
  // defined as "the full 2^64 range": any 64-bit value may come back.
  xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) {
    seen.insert(rng.below(0));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(Rng, BetweenFullInt64SpanDoesNotWrapIntoUb) {
  // hi - lo + 1 wraps to 0 here, which reaches below(0).
  xoshiro256 rng(17);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 256; ++i) {
    const auto v = rng.between(std::numeric_limits<std::int64_t>::min(),
                               std::numeric_limits<std::int64_t>::max());
    saw_negative |= v < 0;
    saw_positive |= v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Rng, UniformInUnitInterval) {
  xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(MathUtils, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(round_up(10, 8), 16u);
  EXPECT_EQ(round_up(16, 8), 16u);
  EXPECT_EQ(round_up(0, 8), 0u);
}

TEST(MathUtils, GcdLcm) {
  EXPECT_EQ(gcd(12, 18), 6u);
  EXPECT_EQ(gcd(0, 5), 5u);
  EXPECT_EQ(gcd(5, 0), 5u);
  EXPECT_EQ(lcm(4, 6), 12u);
  EXPECT_EQ(lcm(0, 6), 0u);
}

TEST(MathUtils, Divisors) {
  EXPECT_EQ(divisors_of(12), (std::vector<std::uint64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors_of(1), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(divisors_of(16), (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(count_divisors(576), 21u);
  EXPECT_EQ(count_divisors(576), divisors_of(576).size());
}

TEST(MathUtils, PowersOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(MathUtils, SaturatingMul) {
  EXPECT_EQ(saturating_mul(1u << 20, 1u << 20), std::uint64_t{1} << 40);
  EXPECT_EQ(saturating_mul(std::uint64_t{1} << 40, std::uint64_t{1} << 40),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(saturating_mul(0, std::uint64_t{1} << 63), 0u);
}

TEST(MathUtils, Log10Product) {
  EXPECT_NEAR(log10_product({10, 10, 10}), 3.0, 1e-12);
  EXPECT_NEAR(log10_product({1000, 1000}), 6.0, 1e-12);
}

TEST(Statistics, RunningStats) {
  running_stats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Statistics, Percentile) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3}, 100), 3.0);
}

TEST(Statistics, PercentileAndMadOfEmptyInputAreNaN) {
  // 0.0 would read as a real measurement in a bench table; an absent sample
  // must poison downstream arithmetic instead.
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
  EXPECT_TRUE(std::isnan(percentile({}, 0)));
  EXPECT_TRUE(std::isnan(mad({})));
  EXPECT_DOUBLE_EQ(mad({3.0}), 0.0);  // one sample: defined, zero deviation
}

TEST(Statistics, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1, 4, 16}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

TEST(StringUtils, SplitTrimJoin) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
}

TEST(StringUtils, ReplaceIdentifierIsWholeWord) {
  // WPT must be replaced, WPT2 and MY_WPT must not — this is the same rule
  // the OpenCL preprocessor applies with -DWPT=8.
  const std::string src = "for(i=0;i<WPT;i++) x[WPT2]+=MY_WPT+WPT;";
  EXPECT_EQ(replace_identifier(src, "WPT", "8"),
            "for(i=0;i<8;i++) x[WPT2]+=MY_WPT+8;");
}

TEST(StringUtils, Formatters) {
  EXPECT_EQ(format_duration_ns(1.5e6), "1.5 ms");
  EXPECT_EQ(format_duration_ns(2.0e9), "2 s");
  EXPECT_EQ(format_duration_ns(500), "500 ns");
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SubmitReturnsFutureResult) {
  thread_pool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  thread_pool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The intra-group generator issues parallel_for from inside a parallel_for
  // task on the same pool; the caller must drain its own iterations.
  thread_pool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, SubmitOnStoppingPoolThrowsWhileQueuedTasksDrain) {
  // A task enqueued during/after shutdown used to race the drain-and-join in
  // the destructor and could be dropped with a broken-promise future; now
  // the submission is rejected up front, and work queued *before* the stop
  // still runs to completion.
  thread_pool pool(2);
  auto queued = pool.submit([] { return 42; });
  pool.stop();
  EXPECT_THROW((void)pool.submit([] { return 0; }), std::runtime_error);
  EXPECT_EQ(queued.get(), 42);
  pool.stop();  // idempotent
  EXPECT_THROW((void)pool.submit([] { return 0; }), std::runtime_error);
}

TEST(WorkQueue, DrainHandlesEveryInitialItem) {
  thread_pool pool(4);
  work_queue<std::size_t> queue;
  std::vector<std::atomic<int>> hits(100);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    queue.push(i);
  }
  queue.drain(pool, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(WorkQueue, HandlersMayPushFollowUpItems) {
  // The re-split pattern: a handler splits its item and pushes the halves
  // back; drain must not return until the pushed items are handled too.
  thread_pool pool(2);
  work_queue<std::pair<int, int>> queue;  // [lo, hi) spans
  std::atomic<int> singletons{0};
  queue.push({0, 64});
  queue.drain(pool, [&](std::pair<int, int> span) {
    const int width = span.second - span.first;
    if (width <= 1) {
      singletons += width;
      return;
    }
    const int mid = span.first + width / 2;
    queue.push({span.first, mid});
    queue.push({mid, span.second});
  });
  EXPECT_EQ(singletons.load(), 64);
}

TEST(WorkQueue, DrainOnEmptyQueueReturnsImmediately) {
  thread_pool pool(2);
  work_queue<int> queue;
  int calls = 0;
  queue.drain(pool, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(WorkQueue, DrainRethrowsFirstHandlerError) {
  thread_pool pool(2);
  work_queue<int> queue;
  std::atomic<int> handled{0};
  for (int i = 0; i < 10; ++i) {
    queue.push(i);
  }
  EXPECT_THROW(queue.drain(pool,
                           [&](int i) {
                             if (i == 3) {
                               throw std::runtime_error("boom");
                             }
                             handled++;
                           }),
               std::runtime_error);
  EXPECT_EQ(handled.load(), 9);  // remaining items were still handled
}

TEST(PartitionEvenly, CoversRangeWithBalancedSpans) {
  for (const std::size_t count : {1u, 7u, 16u, 100u, 101u}) {
    for (const std::size_t parts : {1u, 2u, 3u, 16u}) {
      const auto bounds = partition_evenly(count, parts);
      ASSERT_GE(bounds.size(), 2u);
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), count);
      std::size_t min_span = count;
      std::size_t max_span = 0;
      for (std::size_t p = 0; p + 1 < bounds.size(); ++p) {
        ASSERT_LT(bounds[p], bounds[p + 1]);  // contiguous, non-empty
        min_span = std::min(min_span, bounds[p + 1] - bounds[p]);
        max_span = std::max(max_span, bounds[p + 1] - bounds[p]);
      }
      EXPECT_LE(max_span - min_span, 1u);
      EXPECT_EQ(bounds.size() - 1, std::min(parts, count));
    }
  }
}

TEST(PartitionEvenly, ZeroCountYieldsSingleBoundary) {
  EXPECT_EQ(partition_evenly(0, 4), (std::vector<std::size_t>{0}));
}

TEST(CsvWriter, WritesHeaderAndEscapedRows) {
  const std::string path = ::testing::TempDir() + "atf_csv_test.csv";
  {
    csv_writer csv(path, {"a", "b"});
    csv.write_row({"1", "plain"});
    csv.write_row({"2", "with,comma"});
    csv.write_row({"3", "with\"quote"});
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, WrongColumnCountThrows) {
  const std::string path = ::testing::TempDir() + "atf_csv_test2.csv";
  csv_writer csv(path, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), std::runtime_error);
  std::remove(path.c_str());
}

// RFC-4180 parse of a whole file: quoted fields may span lines and contain
// escaped quotes — the inverse of csv_writer::escape.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"' && i + 1 < text.size() && text[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      field += c;
    }
  }
  return rows;
}

TEST(CsvWriter, CarriageReturnFieldsAreQuotedAndRoundTrip) {
  // A field holding CRLF (or a bare CR) must come back intact — without the
  // \r quote trigger the CR leaks into the stream unquoted and splits the
  // row for any reader that honours CR line breaks.
  const std::vector<std::string> tricky = {
      "crlf\r\ninside", "bare\rcr", "trailing\r", "plain"};
  const std::string path = ::testing::TempDir() + "atf_csv_test3.csv";
  {
    csv_writer csv(path, {"w", "x", "y", "z"});
    csv.write_row(tricky);
    csv.flush();
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto rows = parse_csv(buffer.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], tricky);
  // And the raw bytes of every CR-carrying field are quoted.
  EXPECT_NE(buffer.str().find("\"crlf\r\ninside\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"bare\rcr\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
