// Tests for the numeric-domain sub-techniques and the AUC-bandit ensemble,
// exercised directly through the propose/report protocol on synthetic
// functions with known optima.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "atf/search/auc_bandit.hpp"
#include "atf/search/ensemble.hpp"
#include "atf/search/genetic.hpp"
#include "atf/search/mutation.hpp"
#include "atf/search/nelder_mead.hpp"
#include "atf/search/numeric_domain.hpp"
#include "atf/search/particle_swarm.hpp"
#include "atf/search/pattern_search.hpp"
#include "atf/search/random_technique.hpp"
#include "atf/search/surrogate_arm.hpp"
#include "atf/search/torczon.hpp"

namespace {

using namespace atf::search;

double sphere(const point& p, const std::vector<double>& target) {
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = static_cast<double>(p[i]) - target[i];
    sum += d * d;
  }
  return sum;
}

/// Drives a technique for `budget` steps; returns best cost seen.
double drive(domain_technique& technique, const numeric_domain& domain,
             std::uint64_t seed, int budget,
             const std::function<double(const point&)>& f) {
  technique.initialize(domain, seed);
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < budget; ++i) {
    const point p = technique.next_point();
    const double cost = f(p);
    best = std::min(best, cost);
    technique.report(cost);
  }
  return best;
}

TEST(NumericDomain, SizeAndSaturation) {
  numeric_domain d({4, 5, 6});
  EXPECT_EQ(d.dimensions(), 3u);
  EXPECT_EQ(d.size_saturated(), 120u);
  numeric_domain huge(std::vector<std::uint64_t>(8, std::uint64_t{1} << 32));
  EXPECT_EQ(huge.size_saturated(), std::numeric_limits<std::uint64_t>::max());
}

TEST(NumericDomain, RejectsEmptyOrZeroAxes) {
  EXPECT_THROW(numeric_domain(std::vector<std::uint64_t>{}),
               std::invalid_argument);
  EXPECT_THROW(numeric_domain(std::vector<std::uint64_t>{4, 0}),
               std::invalid_argument);
}

TEST(NumericDomain, ClampRoundsAndBounds) {
  numeric_domain d({10});
  EXPECT_EQ(d.clamp({-3.2})[0], 0u);
  EXPECT_EQ(d.clamp({4.4})[0], 4u);
  EXPECT_EQ(d.clamp({4.6})[0], 5u);
  EXPECT_EQ(d.clamp({99.0})[0], 9u);
}

TEST(NumericDomain, RandomPointInBounds) {
  numeric_domain d({3, 7, 11});
  atf::common::xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const point p = d.random_point(rng);
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_LT(p[a], d.axis_size(a));
    }
  }
}

class SubTechniqueTest
    : public ::testing::TestWithParam<std::function<
          std::unique_ptr<domain_technique>()>> {};

TEST_P(SubTechniqueTest, ImprovesOnSphere2D) {
  numeric_domain domain({128, 128});
  const std::vector<double> target{37.0, 91.0};
  auto technique = GetParam()();
  const double best = drive(*technique, domain, 11, 600,
                            [&](const point& p) { return sphere(p, target); });
  // Random baseline over 600 samples lands near ~25 on average; local
  // techniques must do clearly better than a wide miss.
  EXPECT_LT(best, 100.0);
}

TEST_P(SubTechniqueTest, HandlesSingletonAxes) {
  numeric_domain domain({1, 1, 1});
  auto technique = GetParam()();
  const double best =
      drive(*technique, domain, 3, 20, [](const point&) { return 7.0; });
  EXPECT_EQ(best, 7.0);
}

TEST_P(SubTechniqueTest, SurvivesInfiniteCosts) {
  numeric_domain domain({64});
  auto technique = GetParam()();
  const double best =
      drive(*technique, domain, 5, 300, [](const point& p) -> double {
        if (p[0] % 2 == 1) {
          return std::numeric_limits<double>::infinity();
        }
        return static_cast<double>(p[0]);
      });
  EXPECT_EQ(best, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Pool, SubTechniqueTest,
    ::testing::Values(
        [] { return std::unique_ptr<domain_technique>(new nelder_mead()); },
        [] { return std::unique_ptr<domain_technique>(new torczon()); },
        [] { return std::unique_ptr<domain_technique>(new pattern_search()); },
        [] { return std::unique_ptr<domain_technique>(new mutation()); },
        [] { return std::unique_ptr<domain_technique>(new genetic()); },
        [] { return std::unique_ptr<domain_technique>(new particle_swarm()); },
        [] {
          return std::unique_ptr<domain_technique>(new random_technique());
        },
        [] { return std::unique_ptr<domain_technique>(new surrogate_arm()); }));

TEST(PatternSearch, DescendsMonotoneFunctionToOptimum) {
  numeric_domain domain({1024});
  pattern_search technique;
  const double best = drive(technique, domain, 17, 400, [](const point& p) {
    return static_cast<double>(p[0]);
  });
  EXPECT_EQ(best, 0.0);
}

TEST(NelderMead, FindsExactOptimumOn1D) {
  numeric_domain domain({512});
  nelder_mead technique;
  const double best = drive(technique, domain, 23, 400, [](const point& p) {
    const double d = static_cast<double>(p[0]) - 200.0;
    return d * d;
  });
  EXPECT_LE(best, 4.0);
}

TEST(Genetic, ConvergesOnSphere) {
  numeric_domain domain({256, 256});
  genetic technique;
  const double best = drive(technique, domain, 41, 1200, [](const point& p) {
    return sphere(p, {200.0, 30.0});
  });
  EXPECT_LT(best, 100.0);
}

TEST(Genetic, ElitesSurviveGenerations) {
  // With mutation off and crossover off, the best individual must persist:
  // the best cost can never regress across generations.
  genetic::options opts;
  opts.population = 8;
  opts.crossover_rate = 0.0;
  opts.mutation_rate = 0.0;
  opts.elites = 2;
  genetic technique(opts);
  numeric_domain domain({1024});
  technique.initialize(domain, 5);
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 64; ++i) {
    const point p = technique.next_point();
    const double cost = static_cast<double>(p[0]);
    best = std::min(best, cost);
    technique.report(cost);
  }
  // After several generations the population still contains the elite.
  bool elite_seen = false;
  for (int i = 0; i < 8; ++i) {
    const point p = technique.next_point();
    if (static_cast<double>(p[0]) == best) {
      elite_seen = true;
    }
    technique.report(static_cast<double>(p[0]));
  }
  EXPECT_TRUE(elite_seen);
}

TEST(ParticleSwarm, ConvergesOnSphere) {
  numeric_domain domain({256, 256});
  particle_swarm technique;
  const double best = drive(technique, domain, 43, 1200, [](const point& p) {
    return sphere(p, {60.0, 220.0});
  });
  EXPECT_LT(best, 100.0);
}

TEST(ParticleSwarm, PositionsStayInBounds) {
  numeric_domain domain({16, 4});
  particle_swarm technique;
  technique.initialize(domain, 3);
  for (int i = 0; i < 500; ++i) {
    const point p = technique.next_point();
    EXPECT_LT(p[0], 16u);
    EXPECT_LT(p[1], 4u);
    technique.report(static_cast<double>(p[0] + p[1]));
  }
}

TEST(Torczon, ContractsOntoOptimum) {
  numeric_domain domain({256, 256});
  torczon technique;
  const double best = drive(technique, domain, 31, 800, [](const point& p) {
    return sphere(p, {100.0, 150.0});
  });
  EXPECT_LT(best, 64.0);
}

TEST(AucBandit, PrefersSuccessfulArm) {
  auc_bandit bandit(3, 100, 0.0);
  // Arm 1 always succeeds, the others never do.
  for (int i = 0; i < 30; ++i) {
    bandit.record(0, false);
    bandit.record(1, true);
    bandit.record(2, false);
  }
  EXPECT_EQ(bandit.select(), 1u);
  EXPECT_GT(bandit.auc(1), bandit.auc(0));
}

TEST(AucBandit, ExplorationBonusVisitsUnusedArms) {
  auc_bandit bandit(2, 100, 0.05);
  bandit.record(0, true);
  // Arm 1 was never used inside the window -> infinite exploration bonus.
  EXPECT_EQ(bandit.select(), 1u);
}

TEST(AucBandit, WindowForgetsOldSuccesses) {
  auc_bandit bandit(2, 10, 0.0);
  for (int i = 0; i < 10; ++i) {
    bandit.record(0, true);
  }
  // Push arm 0's successes out of the window with failures.
  for (int i = 0; i < 10; ++i) {
    bandit.record(0, false);
  }
  for (int i = 0; i < 3; ++i) {
    bandit.record(1, true);
  }
  EXPECT_EQ(bandit.select(), 1u);
}

TEST(AucBandit, RecentSuccessWeighsMoreThanOldSuccess) {
  auc_bandit bandit(2, 100, 0.0);
  // Arm 0: success then failures; arm 1: failures then success.
  bandit.record(0, true);
  bandit.record(0, false);
  bandit.record(0, false);
  bandit.record(1, false);
  bandit.record(1, false);
  bandit.record(1, true);
  EXPECT_GT(bandit.auc(1), bandit.auc(0));
}

TEST(Ensemble, UsesEveryPoolMember) {
  ensemble engine;
  numeric_domain domain({64, 64});
  engine.initialize(domain, 9);
  for (int i = 0; i < 400; ++i) {
    const point p = engine.next_point();
    engine.report(sphere(p, {10.0, 20.0}));
  }
  const auto uses = engine.technique_uses();
  ASSERT_EQ(uses.size(), 8u);  // 7 classic members + the surrogate arm
  for (const auto n : uses) {
    EXPECT_GT(n, 0u) << "bandit starved a pool member";
  }
}

TEST(Ensemble, TracksGlobalBest) {
  ensemble engine;
  numeric_domain domain({128});
  engine.initialize(domain, 13);
  double expected_best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 300; ++i) {
    const point p = engine.next_point();
    const double cost = static_cast<double>((p[0] % 37) * 3 + p[0] / 50);
    expected_best = std::min(expected_best, cost);
    engine.report(cost);
  }
  EXPECT_TRUE(engine.has_best());
  EXPECT_EQ(engine.best_cost(), expected_best);
}

TEST(Ensemble, CustomPoolRespected) {
  std::vector<std::unique_ptr<domain_technique>> pool;
  pool.push_back(std::make_unique<random_technique>());
  ensemble engine(std::move(pool));
  numeric_domain domain({16});
  engine.initialize(domain, 3);
  for (int i = 0; i < 50; ++i) {
    (void)engine.next_point();
    engine.report(1.0);
  }
  EXPECT_EQ(engine.technique_uses()[0], 50u);
}

TEST(Ensemble, EmptyPoolThrows) {
  EXPECT_THROW(
      ensemble(std::vector<std::unique_ptr<domain_technique>>{}),
      std::invalid_argument);
}

}  // namespace
