// Direct unit tests for the sliding-window AUC bandit: exact credit
// assignment (the area-under-curve weighting), window eviction vs lifetime
// accounting, and the eligibility-masked selection the batch-aware ensemble
// uses to fill mixed batches.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "atf/search/auc_bandit.hpp"

namespace {

using atf::search::auc_bandit;

TEST(AucBanditCredit, AucWeightsLateSuccessesMore) {
  auc_bandit bandit(1, 100, 0.0);
  // Bits for arm 0, in order: T F T. The i-th use (1-based) weighs i, the
  // normalizer is n(n+1)/2 = 6 -> AUC = (1 + 3) / 6.
  bandit.record(0, true);
  bandit.record(0, false);
  bandit.record(0, true);
  EXPECT_DOUBLE_EQ(bandit.auc(0), 4.0 / 6.0);
}

TEST(AucBanditCredit, AllSuccessesGiveFullCredit) {
  auc_bandit bandit(2, 100, 0.0);
  for (int i = 0; i < 5; ++i) {
    bandit.record(1, true);
  }
  EXPECT_DOUBLE_EQ(bandit.auc(1), 1.0);
  EXPECT_DOUBLE_EQ(bandit.auc(0), 0.0);  // never used
}

TEST(AucBanditCredit, CreditIsPerArmNotGlobal) {
  auc_bandit bandit(2, 100, 0.0);
  // Interleave: arm 0 always fails, arm 1 always succeeds. Arm 1's AUC
  // must be computed over its own bit sequence only.
  for (int i = 0; i < 4; ++i) {
    bandit.record(0, false);
    bandit.record(1, true);
  }
  EXPECT_DOUBLE_EQ(bandit.auc(0), 0.0);
  EXPECT_DOUBLE_EQ(bandit.auc(1), 1.0);
  EXPECT_EQ(bandit.uses(0), 4u);
  EXPECT_EQ(bandit.uses(1), 4u);
}

TEST(AucBanditWindow, EvictionDropsOldestEntries) {
  auc_bandit bandit(1, 4, 0.0);
  for (int i = 0; i < 4; ++i) {
    bandit.record(0, true);
  }
  EXPECT_DOUBLE_EQ(bandit.auc(0), 1.0);
  // Four failures push every success out of the window.
  for (int i = 0; i < 4; ++i) {
    bandit.record(0, false);
  }
  EXPECT_DOUBLE_EQ(bandit.auc(0), 0.0);
  EXPECT_EQ(bandit.uses(0), 4u);           // window-bounded
  EXPECT_EQ(bandit.lifetime_uses(0), 8u);  // never evicted
}

TEST(AucBanditWindow, EvictionIsSharedAcrossArms) {
  // The window holds entries of *all* arms: arm 0's old successes are
  // evicted by arm 1's later uses.
  auc_bandit bandit(2, 3, 0.0);
  bandit.record(0, true);
  bandit.record(1, false);
  bandit.record(1, false);
  EXPECT_EQ(bandit.uses(0), 1u);
  bandit.record(1, false);  // evicts arm 0's only entry
  EXPECT_EQ(bandit.uses(0), 0u);
  EXPECT_EQ(bandit.lifetime_uses(0), 1u);
  EXPECT_DOUBLE_EQ(bandit.auc(0), 0.0);
}

TEST(AucBanditSelect, RecordRejectsOutOfRangeArm) {
  auc_bandit bandit(2);
  EXPECT_THROW(bandit.record(2, true), std::out_of_range);
  EXPECT_THROW((void)bandit.lifetime_uses(2), std::out_of_range);
}

TEST(AucBanditSelect, SelectAmongMatchesSelectWhenAllEligible) {
  auc_bandit bandit(4, 50, 0.05);
  atf::search::auc_bandit reference(4, 50, 0.05);
  // Replay an arbitrary deterministic history into both.
  for (int i = 0; i < 60; ++i) {
    const std::size_t arm = static_cast<std::size_t>(i * 7 % 4);
    const bool success = (i % 3) == 0;
    bandit.record(arm, success);
    reference.record(arm, success);
  }
  EXPECT_EQ(bandit.select_among(std::vector<bool>(4, true)),
            reference.select());
}

TEST(AucBanditSelect, SelectAmongHonorsEligibilityMask) {
  auc_bandit bandit(3, 100, 0.0);
  // Arm 1 is clearly the best; with arm 1 masked out the choice must fall
  // to the best of the rest (arm 2 succeeds sometimes, arm 0 never).
  for (int i = 0; i < 10; ++i) {
    bandit.record(0, false);
    bandit.record(1, true);
    bandit.record(2, i % 2 == 0);
  }
  EXPECT_EQ(bandit.select(), 1u);
  EXPECT_EQ(bandit.select_among({true, false, true}), 2u);
  EXPECT_EQ(bandit.select_among({true, false, false}), 0u);
}

TEST(AucBanditSelect, UnusedEligibleArmHasPriority) {
  auc_bandit bandit(3, 100, 0.05);
  bandit.record(0, true);
  bandit.record(1, true);
  // Arm 2 was never used inside the window -> infinite exploration bonus.
  EXPECT_EQ(bandit.select_among({true, true, true}), 2u);
  // Masked out, the successful arms compete normally.
  const std::size_t pick = bandit.select_among({true, true, false});
  EXPECT_LT(pick, 2u);
}

TEST(AucBanditSelect, SelectAmongRejectsBadMasks) {
  auc_bandit bandit(2);
  EXPECT_THROW((void)bandit.select_among({true}), std::invalid_argument);
  EXPECT_THROW((void)bandit.select_among({false, false}),
               std::invalid_argument);
}

TEST(AucBanditSelect, TiesBreakTowardLowestIndex) {
  auc_bandit bandit(3, 100, 0.0);
  // Identical histories for every arm -> identical scores.
  for (int i = 0; i < 3; ++i) {
    bandit.record(0, true);
    bandit.record(1, true);
    bandit.record(2, true);
  }
  EXPECT_EQ(bandit.select(), 0u);
  EXPECT_EQ(bandit.select_among({false, true, true}), 1u);
}

}  // namespace
