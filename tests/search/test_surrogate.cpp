// Surrogate-guided search: the forest's determinism contract, the trainer's
// invalid-cost routing, the feature encoder, and the technique end to end
// through the tuner — fixed-seed bit-identity, batched-at-1 ≡ sequential,
// warm-start-from-journal ≡ warm-start-from-in-memory-store, and the
// empty/all-invalid edge cases (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "atf/atf.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search/surrogate_arm.hpp"
#include "atf/search/surrogate_model.hpp"
#include "atf/search/surrogate_search.hpp"
#include "atf/session/journal.hpp"
#include "atf/session/result_store.hpp"
#include "atf/session/session.hpp"

namespace {

using atf::search::feature_encoder;
using atf::search::feature_vector;
using atf::search::surrogate_model;
using atf::search::surrogate_search;
using atf::search::surrogate_trainer;

constexpr double kInf = std::numeric_limits<double>::infinity();

atf::tuner make_rugged_tuner() {
  auto x = atf::tp("x", atf::interval<int>(0, 63));
  auto y = atf::tp("y", atf::interval<int>(0, 63));
  atf::tuner t;
  t.tuning_parameters(x, y);
  return t;
}

double rugged_cost(const atf::configuration& config) {
  const int x = config["x"];
  const int y = config["y"];
  double cost = (x - 17) * (x - 17) + (y - 42) * (y - 42);
  if (x % 4 != 0) {
    cost += 25;
  }
  if (y % 8 != 0) {
    cost += 50;
  }
  return cost;
}

TEST(FeatureEncoder, TwoFeaturesPerParameterInDeclarationOrder) {
  feature_encoder encoder({"a", "b"});
  EXPECT_EQ(encoder.width(), 4u);
  atf::configuration config;
  config.add("b", 8);
  config.add("a", 3);
  const auto features = encoder.encode(config);
  ASSERT_TRUE(features.has_value());
  ASSERT_EQ(features->size(), 4u);
  EXPECT_DOUBLE_EQ((*features)[0], 3.0);
  EXPECT_DOUBLE_EQ((*features)[1], std::asinh(3.0));
  EXPECT_DOUBLE_EQ((*features)[2], 8.0);
  EXPECT_DOUBLE_EQ((*features)[3], std::asinh(8.0));
}

TEST(FeatureEncoder, MissingParameterYieldsNullopt) {
  feature_encoder encoder({"a", "b"});
  atf::configuration config;
  config.add("a", 1);
  EXPECT_FALSE(encoder.encode(config).has_value());
}

TEST(SurrogateModel, FitIsBitDeterministic) {
  std::vector<feature_vector> features;
  std::vector<double> targets;
  for (int i = 0; i < 64; ++i) {
    features.push_back({static_cast<double>(i), std::asinh(i)});
    targets.push_back(static_cast<double>((i - 20) * (i - 20)));
  }
  surrogate_model a;
  surrogate_model b;
  a.fit(features, targets, 42);
  b.fit(features, targets, 42);
  for (int i = 0; i < 64; ++i) {
    const feature_vector x{static_cast<double>(i) + 0.5,
                           std::asinh(i + 0.5)};
    const auto pa = a.predict(x);
    const auto pb = b.predict(x);
    EXPECT_EQ(pa.mean, pb.mean);
    EXPECT_EQ(pa.stddev, pb.stddev);
  }
}

TEST(SurrogateModel, LearnsWhichRegionIsCheap) {
  // Low cost on the left half of the axis, high on the right.
  std::vector<feature_vector> features;
  std::vector<double> targets;
  for (int i = 0; i < 100; ++i) {
    features.push_back({static_cast<double>(i)});
    targets.push_back(i < 50 ? 1.0 : 100.0);
  }
  surrogate_model model;
  model.fit(features, targets, 7);
  EXPECT_LT(model.predict({10.0}).mean, model.predict({90.0}).mean);
}

TEST(SurrogateModel, RejectsMismatchedInput) {
  surrogate_model model;
  EXPECT_THROW(model.fit({}, {}, 1), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0}}, {1.0, 2.0}, 1), std::invalid_argument);
}

TEST(SurrogateTrainer, InvalidCostsNeverReachTheRegression) {
  surrogate_trainer::options opts;
  opts.min_train = 4;
  surrogate_trainer trainer(opts, 3);
  // Plenty of invalid samples alone never make the model ready: only valid
  // samples count toward min_train.
  for (int i = 0; i < 50; ++i) {
    trainer.add({static_cast<double>(i)}, kInf, true);
  }
  EXPECT_FALSE(trainer.ready());
  EXPECT_EQ(trainer.valid_samples(), 0u);
  EXPECT_EQ(trainer.invalid_samples(), 50u);
}

TEST(SurrogateTrainer, InvalidRegionIsPenalizedInTheScore) {
  surrogate_trainer::options opts;
  opts.min_train = 8;
  opts.refit_interval = 4;
  surrogate_trainer trainer(opts, 5);
  // Same flat valid cost everywhere, but the right half fails.
  for (int i = 0; i < 100; ++i) {
    const bool invalid = i >= 50;
    trainer.add({static_cast<double>(i)}, invalid ? kInf : 10.0, invalid);
  }
  ASSERT_TRUE(trainer.ready());
  EXPECT_LT(trainer.score({10.0}), trainer.score({90.0}));
}

TEST(SurrogateSearch, FixedSeedRerunIsBitIdentical) {
  auto run = [] {
    auto t = make_rugged_tuner();
    t.search_technique(std::make_unique<surrogate_search>(1234));
    t.abort_condition(atf::cond::evaluations(300));
    std::vector<double> costs;
    const auto result = t.tune([&](const atf::configuration& config) {
      const double c = rugged_cost(config);
      costs.push_back(c);
      return c;
    });
    return std::make_pair(costs, result.best_configuration().to_string());
  };
  const auto a = run();
  const auto b = run();
  // The full measured-cost stream is identical, not just the final best —
  // every proposal decision replayed bit-for-bit.
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SurrogateSearch, BatchedAtOneEqualsSequential) {
  auto t = make_rugged_tuner();
  const atf::search_space& space = t.space();

  surrogate_search sequential(7);
  surrogate_search batched(7);
  sequential.initialize(space);
  batched.initialize(space);
  for (int i = 0; i < 200; ++i) {
    const atf::configuration a = sequential.get_next_config();
    const std::vector<atf::configuration> b = batched.propose_batch(1);
    ASSERT_EQ(b.size(), 1u);
    ASSERT_EQ(a.to_string(), b.front().to_string());
    const double cost = rugged_cost(a);
    sequential.report_cost(cost);
    batched.report_batch(b, {cost});
  }
}

TEST(SurrogateSearch, ConvergesBetterThanWideMiss) {
  auto t = make_rugged_tuner();
  t.search_technique(std::make_unique<surrogate_search>(99));
  t.abort_condition(atf::cond::evaluations(400));
  const auto result = t.tune(rugged_cost);
  EXPECT_LT(*result.best_cost, 100.0);
}

TEST(SurrogateSearch, SurvivesAllInvalidLandscape) {
  // Every evaluation fails: the model never becomes ready, the technique
  // keeps proposing random exploration, and nothing crashes.
  auto t = make_rugged_tuner();
  auto technique = std::make_unique<surrogate_search>(11);
  surrogate_search* raw = technique.get();
  t.search_technique(std::move(technique));
  t.abort_condition(atf::cond::evaluations(100));
  const auto result = t.tune([](const atf::configuration&) { return kInf; });
  EXPECT_EQ(result.evaluations, 100u);
  EXPECT_FALSE(raw->model_ready());
  EXPECT_EQ(raw->invalid_training_samples(), raw->training_samples());
}

TEST(SurrogateSearch, AvoidsReMeasuringWhileFreshPointsExist) {
  // 4096-point space, 64 evaluations: with the measured-set filter no
  // configuration should be proposed twice.
  auto t = make_rugged_tuner();
  auto technique = std::make_unique<surrogate_search>(21);
  t.search_technique(std::move(technique));
  t.abort_condition(atf::cond::evaluations(64));
  std::set<std::string> seen;
  std::size_t calls = 0;
  (void)t.tune([&](const atf::configuration& config) {
    seen.insert(config.to_string());
    ++calls;
    return rugged_cost(config);
  });
  EXPECT_EQ(seen.size(), calls);
}

TEST(SurrogateSearch, ExhaustedSpaceFallsBackToRepeats) {
  // A 4-point space with a 100-evaluation budget must not stall once every
  // configuration was measured.
  auto x = atf::tp("x", atf::interval<int>(0, 3));
  atf::tuner t;
  t.tuning_parameters(x);
  t.search_technique(std::make_unique<surrogate_search>(13));
  t.abort_condition(atf::cond::evaluations(100));
  const auto result = t.tune([](const atf::configuration& config) {
    return static_cast<double>(static_cast<int>(config["x"]));
  });
  EXPECT_EQ(result.evaluations, 100u);
  EXPECT_EQ(*result.best_cost, 0.0);
}

class SurrogateWarmStartTest : public ::testing::Test {
protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "atf_surrogate_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(SurrogateWarmStartTest, JournalEqualsInMemoryStore) {
  // Seed a journal with a random-search run.
  {
    auto t = make_rugged_tuner();
    t.search_technique(std::make_unique<atf::search::random_search>(5));
    t.abort_condition(atf::cond::evaluations(120));
    (void)t.session(path_).tune(rugged_cost);
  }

  // Store A: replayed from the journal file. Store B: the same records
  // inserted in-memory, no file involved.
  const auto report = atf::session::read_journal(path_);
  ASSERT_EQ(report.records.size(), 120u);
  const auto from_journal = atf::session::result_store::from_report(report);
  atf::session::result_store in_memory;
  for (const auto& record : report.records) {
    in_memory.insert(record);
  }

  auto t = make_rugged_tuner();
  const atf::search_space& space = t.space();
  surrogate_search a(77);
  surrogate_search b(77);
  a.initialize(space);
  b.initialize(space);
  a.warm_start(from_journal);
  b.warm_start(in_memory);
  EXPECT_EQ(a.training_samples(), b.training_samples());
  EXPECT_TRUE(a.model_ready());
  EXPECT_TRUE(b.model_ready());

  // Identical warm-start state drives identical proposal streams.
  for (int i = 0; i < 100; ++i) {
    const atf::configuration ca = a.get_next_config();
    const atf::configuration cb = b.get_next_config();
    ASSERT_EQ(ca.to_string(), cb.to_string());
    const double cost = rugged_cost(ca);
    a.report_cost(cost);
    b.report_cost(cost);
  }
}

TEST_F(SurrogateWarmStartTest, TunerWiresTheStoreIntoTheTechnique) {
  {
    auto t = make_rugged_tuner();
    t.search_technique(std::make_unique<atf::search::random_search>(5));
    t.abort_condition(atf::cond::evaluations(80));
    (void)t.session(path_).tune(rugged_cost);
  }
  auto t = make_rugged_tuner();
  auto technique = std::make_unique<surrogate_search>(31);
  surrogate_search* raw = technique.get();
  t.search_technique(std::move(technique));
  t.abort_condition(atf::cond::evaluations(81));
  (void)t.session(path_).tune(rugged_cost);
  // The 80 journal records warm-started the model before any proposal.
  EXPECT_GE(raw->training_samples(), 80u);
  EXPECT_TRUE(raw->model_ready());
}

TEST_F(SurrogateWarmStartTest, EmptyStoreIsANoOp) {
  auto t = make_rugged_tuner();
  surrogate_search technique(3);
  technique.initialize(t.space());
  atf::session::result_store empty;
  technique.warm_start(empty);
  EXPECT_EQ(technique.training_samples(), 0u);
  EXPECT_FALSE(technique.model_ready());
  (void)technique.get_next_config();  // still proposes
}

TEST(ResultStore, LatestRecordsDropsSupersededDuplicates) {
  atf::session::result_store store;
  atf::configuration c1;
  c1.add("x", 1);
  atf::configuration c2;
  c2.add("x", 2);
  auto r1 = atf::session::tuning_record::from_configuration(c1);
  r1.scalar = 10.0;
  auto r2 = atf::session::tuning_record::from_configuration(c2);
  r2.scalar = 20.0;
  auto r1b = atf::session::tuning_record::from_configuration(c1);
  r1b.scalar = 5.0;  // supersedes r1
  store.insert(r1);
  store.insert(r2);
  store.insert(r1b);
  ASSERT_EQ(store.records().size(), 3u);
  const auto latest = store.latest_records();
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest[0].config_hash, r2.config_hash);
  EXPECT_EQ(latest[0].scalar, 20.0);
  EXPECT_EQ(latest[1].config_hash, r1b.config_hash);
  EXPECT_EQ(latest[1].scalar, 5.0);
}

TEST(SurrogateArm, ExplicitBoundedMaxBatch) {
  atf::search::surrogate_arm arm;
  EXPECT_EQ(arm.max_batch(), 8u);
  atf::search::numeric_domain domain({64, 64});
  arm.initialize(domain, 9);
  const auto batch = arm.propose_points(100);
  EXPECT_EQ(batch.size(), 8u);  // clamped to the cap
  std::vector<double> costs(batch.size(), 1.0);
  arm.report_points(costs);
}

TEST(SurrogateArm, FixedSeedRerunIsBitIdentical) {
  auto run = [] {
    atf::search::surrogate_arm arm;
    atf::search::numeric_domain domain({64, 64});
    arm.initialize(domain, 123);
    std::vector<atf::search::point> stream;
    for (int i = 0; i < 120; ++i) {
      const atf::search::point p = arm.next_point();
      stream.push_back(p);
      const double d0 = static_cast<double>(p[0]) - 20.0;
      const double d1 = static_cast<double>(p[1]) - 40.0;
      arm.report(d0 * d0 + d1 * d1);
    }
    return stream;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
