// The invalid-cost contract, pinned over every bundled technique: an
// invalid evaluation — NaN, -infinity, or the fault policy's +infinity
// penalty — never becomes a technique's best/anchor, and all three invalid
// encodings are behaviorally equivalent (identical proposal streams when
// the same evaluations fail with different non-finite values).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "atf/atf.hpp"
#include "atf/search/ensemble.hpp"
#include "atf/search/genetic.hpp"
#include "atf/search/mutation.hpp"
#include "atf/search/nelder_mead.hpp"
#include "atf/search/numeric_domain.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/particle_swarm.hpp"
#include "atf/search/pattern_search.hpp"
#include "atf/search/random_technique.hpp"
#include "atf/search/simulated_annealing.hpp"
#include "atf/search/surrogate_arm.hpp"
#include "atf/search/surrogate_search.hpp"
#include "atf/search/torczon.hpp"

namespace {

using namespace atf::search;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Sphere cost with a failure stripe: points whose first coordinate is
/// ≡ 1 (mod 3) fail and report `invalid_as`.
double striped_cost(const point& p, double invalid_as) {
  if (p[0] % 3 == 1) {
    return invalid_as;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = static_cast<double>(p[i]) - 20.0;
    sum += d * d;
  }
  return sum;
}

/// Drives a fresh technique and records its proposal stream.
std::vector<point> drive_stream(
    const std::function<std::unique_ptr<domain_technique>()>& make,
    double invalid_as, int budget) {
  auto technique = make();
  numeric_domain domain({64, 64});
  technique->initialize(domain, 29);
  std::vector<point> stream;
  for (int i = 0; i < budget; ++i) {
    const point p = technique->next_point();
    stream.push_back(p);
    technique->report(striped_cost(p, invalid_as));
  }
  return stream;
}

class InvalidCostContractTest
    : public ::testing::TestWithParam<
          std::function<std::unique_ptr<domain_technique>()>> {};

TEST_P(InvalidCostContractTest, NanMinusInfAndPlusInfAreEquivalent) {
  // Identical seeds, identical valid costs; only the encoding of the
  // failures differs. Any divergence means an invalid cost leaked into the
  // technique's internal ordering or anchor state.
  const auto with_inf = drive_stream(GetParam(), kInf, 400);
  const auto with_nan = drive_stream(GetParam(), kNan, 400);
  const auto with_neg = drive_stream(GetParam(), -kInf, 400);
  EXPECT_EQ(with_inf, with_nan);
  EXPECT_EQ(with_inf, with_neg);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, InvalidCostContractTest,
    ::testing::Values(
        [] { return std::unique_ptr<domain_technique>(new nelder_mead()); },
        [] { return std::unique_ptr<domain_technique>(new torczon()); },
        [] { return std::unique_ptr<domain_technique>(new pattern_search()); },
        [] { return std::unique_ptr<domain_technique>(new mutation()); },
        [] { return std::unique_ptr<domain_technique>(new genetic()); },
        [] { return std::unique_ptr<domain_technique>(new particle_swarm()); },
        [] {
          return std::unique_ptr<domain_technique>(new random_technique());
        },
        [] { return std::unique_ptr<domain_technique>(new surrogate_arm()); }));

// The ensemble drives all members through one code path; the contract must
// hold for the composite too (it is not a domain_technique, so it gets its
// own copy of the stream-equivalence check).
TEST(EnsembleInvalidCost, NanMinusInfAndPlusInfAreEquivalent) {
  const auto run = [](double invalid_as) {
    ensemble engine;
    numeric_domain domain({64, 64});
    engine.initialize(domain, 29);
    std::vector<point> stream;
    for (int i = 0; i < 400; ++i) {
      const point p = engine.next_point();
      stream.push_back(p);
      engine.report(striped_cost(p, invalid_as));
    }
    return stream;
  };
  const auto with_inf = run(kInf);
  EXPECT_EQ(with_inf, run(kNan));
  EXPECT_EQ(with_inf, run(-kInf));
}

TEST(MutationInvalidCost, NonFiniteNeverBecomesTheAnchor) {
  // Regression: before the fix, a non-finite first report both seeded the
  // anchor point and, once an anchor existed, -infinity overwrote it and
  // cleared have_best_.
  mutation technique;
  numeric_domain domain({128});
  technique.initialize(domain, 7);

  // A +infinity penalty while no anchor exists must not establish one.
  (void)technique.next_point();
  technique.report(kInf);
  EXPECT_FALSE(technique.has_best());

  // Establish a real anchor.
  (void)technique.next_point();
  technique.report(5.0);
  ASSERT_TRUE(technique.has_best());
  ASSERT_EQ(technique.best_cost(), 5.0);

  // Neither -infinity nor NaN may displace it.
  (void)technique.next_point();
  technique.report(-kInf);
  EXPECT_TRUE(technique.has_best());
  EXPECT_EQ(technique.best_cost(), 5.0);
  (void)technique.next_point();
  technique.report(kNan);
  EXPECT_TRUE(technique.has_best());
  EXPECT_EQ(technique.best_cost(), 5.0);

  // A better finite cost still wins.
  (void)technique.next_point();
  technique.report(2.0);
  EXPECT_EQ(technique.best_cost(), 2.0);
}

TEST(EnsembleInvalidCost, GlobalBestStaysFinite) {
  ensemble engine;
  numeric_domain domain({64});
  engine.initialize(domain, 17);
  for (int i = 0; i < 300; ++i) {
    const point p = engine.next_point();
    engine.report(striped_cost(p, -kInf));
  }
  ASSERT_TRUE(engine.has_best());
  EXPECT_TRUE(std::isfinite(engine.best_cost()));
}

/// Tuner-level: every ATF-level technique must find the valid optimum on a
/// landscape where a third of the space fails with the default +infinity
/// penalty (and the reported best must be a valid configuration).
TEST(TunerInvalidCost, TechniquesFindValidBestDespiteFailures) {
  auto landscape = [](const atf::configuration& config) -> double {
    const int x = config["x"];
    if (x % 3 == 1) {
      return kInf;
    }
    return static_cast<double>((x - 30) * (x - 30));
  };
  const auto run = [&](std::unique_ptr<atf::search_technique> technique) {
    auto x = atf::tp("x", atf::interval<int>(0, 99));
    atf::tuner t;
    t.tuning_parameters(x);
    t.search_technique(std::move(technique));
    t.abort_condition(atf::cond::evaluations(300));
    return t.tune(landscape);
  };

  for (int which = 0; which < 3; ++which) {
    std::unique_ptr<atf::search_technique> technique;
    switch (which) {
      case 0:
        technique = std::make_unique<simulated_annealing>(4.0, 3);
        break;
      case 1:
        technique = std::make_unique<opentuner_search>(3);
        break;
      default:
        technique = std::make_unique<surrogate_search>(3);
        break;
    }
    const auto result = run(std::move(technique));
    ASSERT_TRUE(result.best_cost.has_value());
    EXPECT_TRUE(std::isfinite(*result.best_cost));
    const int best_x = result.best_configuration()["x"];
    EXPECT_NE(best_x % 3, 1);
  }
}

}  // namespace
