// Tests for the ATF-level search techniques: exhaustive, random search,
// simulated annealing and the OpenTuner-style ensemble technique — all
// driven through the tuner on landscapes with known optima.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "atf/atf.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search/simulated_annealing.hpp"

namespace {

// A rugged but structured 2-D landscape: valley at (17, 42) plus a
// divisibility texture that punishes non-divisor pairs (mimicking kernel
// tuning landscapes).
double rugged_cost(const atf::configuration& config) {
  const int x = config["x"];
  const int y = config["y"];
  double cost = (x - 17) * (x - 17) + (y - 42) * (y - 42);
  if (x % 4 != 0) {
    cost += 25;
  }
  if (y % 8 != 0) {
    cost += 50;
  }
  return cost;
}

atf::tuner make_rugged_tuner() {
  auto x = atf::tp("x", atf::interval<int>(0, 63));
  auto y = atf::tp("y", atf::interval<int>(0, 63));
  atf::tuner t;
  t.tuning_parameters(x, y);
  return t;
}

// Optimum of rugged_cost over the grid: x=16 (divisible by 4, distance 1),
// y=40 (divisible by 8, distance 2) -> 1 + 4 = 5.
constexpr double kRuggedOptimum = 5.0;

TEST(Exhaustive, FindsGlobalOptimum) {
  auto t = make_rugged_tuner();
  auto result = t.tune(rugged_cost);
  EXPECT_EQ(result.evaluations, 64u * 64u);
  EXPECT_EQ(*result.best_cost, kRuggedOptimum);
}

TEST(RandomSearch, IsReproducibleForFixedSeed) {
  auto run = [] {
    auto t = make_rugged_tuner();
    t.search_technique(std::make_unique<atf::search::random_search>(1234));
    t.abort_condition(atf::cond::evaluations(100));
    return t.tune(rugged_cost);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(*a.best_cost, *b.best_cost);
  EXPECT_EQ(a.best_configuration().to_string(),
            b.best_configuration().to_string());
}

TEST(RandomSearch, GetsCloseOnEnoughSamples) {
  auto t = make_rugged_tuner();
  t.search_technique(std::make_unique<atf::search::random_search>(7));
  t.abort_condition(atf::cond::evaluations(2000));
  const auto result = t.tune(rugged_cost);
  EXPECT_LT(*result.best_cost, 200.0);
}

TEST(SimulatedAnnealing, ConvergesNearOptimumOnRuggedLandscape) {
  auto t = make_rugged_tuner();
  t.search_technique(
      std::make_unique<atf::search::simulated_annealing>(4.0, 99));
  t.abort_condition(atf::cond::evaluations(1500));
  const auto result = t.tune(rugged_cost);
  // 1500 of 4096 evaluations must find a near-optimal point.
  EXPECT_LE(*result.best_cost, 30.0);
}

TEST(SimulatedAnnealing, BeatsEqualBudgetRandomOnSmoothLandscape) {
  auto smooth = [](const atf::configuration& config) {
    const int x = config["x"];
    const int y = config["y"];
    return double((x - 50) * (x - 50) + (y - 60) * (y - 60));
  };
  auto make = [] {
    auto x = atf::tp("x", atf::interval<int>(0, 255));
    auto y = atf::tp("y", atf::interval<int>(0, 255));
    atf::tuner t;
    t.tuning_parameters(x, y);
    t.abort_condition(atf::cond::evaluations(400));
    return t;
  };
  double annealing_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto ta = make();
    ta.search_technique(
        std::make_unique<atf::search::simulated_annealing>(4.0, seed));
    annealing_total += *ta.tune(smooth).best_cost;
    auto tr = make();
    tr.search_technique(
        std::make_unique<atf::search::random_search>(seed));
    random_total += *tr.tune(smooth).best_cost;
  }
  EXPECT_LT(annealing_total, random_total);
}

TEST(SimulatedAnnealing, SurvivesFailedEvaluations) {
  auto x = atf::tp("x", atf::interval<int>(0, 99));
  atf::tuner t;
  t.tuning_parameters(x);
  t.search_technique(
      std::make_unique<atf::search::simulated_annealing>(4.0, 3));
  t.abort_condition(atf::cond::evaluations(300));
  const auto result = t.tune([](const atf::configuration& config) -> double {
    const int v = config["x"];
    if (v % 3 == 0) {
      throw atf::evaluation_error("unsupported configuration");
    }
    return double(v);
  });
  ASSERT_TRUE(result.has_best());
  EXPECT_EQ(int(result.best_configuration()["x"]), 1);
  EXPECT_GT(result.failed_evaluations, 0u);
}

TEST(SimulatedAnnealing, ProposeBatchIsPinnedToOneConfiguration) {
  // The walk must never hold two unreported neighbors: however wide the
  // batch limit, propose_batch yields exactly one configuration and
  // report_batch feeds its cost back into the sequential protocol.
  auto x = atf::tp("x", atf::interval<int>(0, 99));
  const auto space = atf::search_space::generate({atf::G(x)},
                                                 atf::generation_mode::sequential);
  atf::search::simulated_annealing sa(4.0, 11);
  sa.initialize(space);
  for (int round = 0; round < 10; ++round) {
    const auto batch = sa.propose_batch(8);
    ASSERT_EQ(batch.size(), 1u) << "round " << round;
    sa.report_batch(batch, {double(int(batch[0]["x"]))});
  }
}

TEST(OpenTunerSearch, ConvergesOnRuggedLandscape) {
  auto t = make_rugged_tuner();
  t.search_technique(std::make_unique<atf::search::opentuner_search>(21));
  t.abort_condition(atf::cond::evaluations(1500));
  const auto result = t.tune(rugged_cost);
  EXPECT_LE(*result.best_cost, 60.0);
}

TEST(OpenTunerSearch, WorksOnConstrainedSpaces) {
  // The whole point of Section IV-C: because the index domain only contains
  // valid configurations, the ensemble never proposes an invalid one.
  const std::size_t n = 576;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto ls =
      atf::tp("LS", atf::interval<std::size_t>(1, n), atf::divides(n / wpt));
  atf::tuner t;
  t.tuning_parameters(wpt, ls);
  t.search_technique(std::make_unique<atf::search::opentuner_search>(5));
  t.abort_condition(atf::cond::evaluations(200));
  std::uint64_t invalid = 0;
  const auto result = t.tune([&](const atf::configuration& config) {
    const std::size_t w = config["WPT"];
    const std::size_t l = config["LS"];
    if (n % w != 0 || (n / w) % l != 0) {
      ++invalid;
    }
    return double(w * 7 % 13) + double(l % 11);
  });
  EXPECT_EQ(invalid, 0u);
  EXPECT_TRUE(result.has_best());
}

TEST(OpenTunerSearch, ReproducibleForFixedSeed) {
  auto run = [] {
    auto t = make_rugged_tuner();
    t.search_technique(std::make_unique<atf::search::opentuner_search>(77));
    t.abort_condition(atf::cond::evaluations(300));
    return *t.tune(rugged_cost).best_cost;
  };
  EXPECT_EQ(run(), run());
}

// A user-defined search technique: most-significant-bit-first binary sweep.
// Demonstrates (and tests) the extension point of Section IV.
class bisecting_sweep final : public atf::search_technique {
public:
  void initialize(const atf::search_space& space) override {
    atf::search_technique::initialize(space);
    lo_ = 0;
    hi_ = space.size() - 1;
    probe_low_ = true;
  }
  [[nodiscard]] atf::configuration get_next_config() override {
    last_ = probe_low_ ? lo_ : hi_;
    return space().config_at(last_);
  }
  void report_cost(double cost) override {
    if (probe_low_) {
      low_cost_ = cost;
      probe_low_ = false;
      return;
    }
    // Keep the half around the better endpoint.
    const std::uint64_t mid = lo_ + (hi_ - lo_) / 2;
    if (low_cost_ <= cost) {
      hi_ = mid;
    } else {
      lo_ = mid + 1 <= hi_ ? mid + 1 : hi_;
    }
    probe_low_ = true;
  }

private:
  std::uint64_t lo_ = 0, hi_ = 0, last_ = 0;
  double low_cost_ = 0.0;
  bool probe_low_ = true;
};

TEST(CustomTechnique, PluggedThroughTheInterface) {
  auto x = atf::tp("x", atf::interval<int>(0, 1023));
  atf::tuner t;
  t.tuning_parameters(x);
  t.search_technique(std::make_unique<bisecting_sweep>());
  t.abort_condition(atf::cond::evaluations(40));
  const auto result = t.tune([](const atf::configuration& config) {
    return double(int(config["x"]));  // monotone: optimum at x=0
  });
  EXPECT_EQ(int(result.best_configuration()["x"]), 0);
}

}  // namespace
