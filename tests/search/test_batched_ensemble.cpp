// The batch-aware AUC-bandit ensemble: mixed-technique batch proposals,
// per-member credit accounting, max_batch() honoring, sequential/batched
// equivalence at width 1, and a property test that no interleaving of
// member proposals ever double-reports or drops a result. Also covers the
// search_technique default propose_batch shim and the exhausted-space
// (empty/short proposal) edge through the tuner loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "atf/atf.hpp"
#include "atf/cf/generic.hpp"
#include "atf/common/rng.hpp"
#include "atf/search/ensemble.hpp"
#include "atf/search/mutation.hpp"
#include "atf/search/nelder_mead.hpp"
#include "atf/search/particle_swarm.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/pattern_search.hpp"
#include "atf/search/random_technique.hpp"
#include "atf/search/torczon.hpp"

namespace {

using namespace atf::search;

// An instrumented pool member: proposes identifiable points, counts every
// proposal and every reported cost, and verifies the ensemble never asks
// for more points than its declared capacity.
class stub_technique final : public domain_technique {
public:
  stub_technique(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void initialize(const numeric_domain& domain, std::uint64_t) override {
    domain_ = &domain;
    proposed_ = 0;
    reported_ = 0;
  }

  [[nodiscard]] std::size_t max_batch() const override { return capacity_; }

  [[nodiscard]] point next_point() override {
    point p(domain_->dimensions(), 0);
    p[0] = proposed_++ % domain_->axis_size(0);
    return p;
  }

  [[nodiscard]] std::vector<point> propose_points(
      std::size_t max_points) override {
    EXPECT_LE(max_points, capacity_)
        << name_ << ": asked for more points than max_batch()";
    std::vector<point> batch;
    batch.reserve(max_points);
    for (std::size_t i = 0; i < max_points; ++i) {
      batch.push_back(next_point());
    }
    return batch;
  }

  void report(double) override { ++reported_; }

  [[nodiscard]] std::uint64_t proposed() const { return proposed_; }
  [[nodiscard]] std::uint64_t reported() const { return reported_; }

private:
  std::string name_;
  std::size_t capacity_;
  const numeric_domain* domain_ = nullptr;
  std::uint64_t proposed_ = 0;
  std::uint64_t reported_ = 0;
};

/// Builds an ensemble over `count` stubs with the given capacities and
/// returns raw pointers for inspection (the ensemble owns them).
std::pair<ensemble, std::vector<stub_technique*>> make_stub_ensemble(
    const std::vector<std::size_t>& capacities) {
  std::vector<std::unique_ptr<domain_technique>> pool;
  std::vector<stub_technique*> raw;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    auto stub = std::make_unique<stub_technique>("stub" + std::to_string(i),
                                                 capacities[i]);
    raw.push_back(stub.get());
    pool.push_back(std::move(stub));
  }
  return {ensemble(std::move(pool)), raw};
}

constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

TEST(BatchedEnsemble, MixedBatchFillsDistinctMembersFirst) {
  auto [engine, stubs] =
      make_stub_ensemble({kUnbounded, kUnbounded, kUnbounded, kUnbounded});
  engine.initialize(numeric_domain({1024}), 1);
  const auto batch = engine.propose_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  std::vector<std::size_t> members = engine.batch_members();
  ASSERT_EQ(members.size(), 4u);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<std::size_t>{0, 1, 2, 3}))
      << "a batch no wider than the pool must use distinct members";
}

TEST(BatchedEnsemble, OverflowSlotsRepeatMembersWithCapacity) {
  // Member 0 can take one slot per batch; member 1 is unbounded. A batch
  // of 5 gives member 0 exactly one slot and the rest to member 1.
  auto [engine, stubs] = make_stub_ensemble({1, kUnbounded});
  engine.initialize(numeric_domain({1024}), 2);
  const auto batch = engine.propose_batch(5);
  ASSERT_EQ(batch.size(), 5u);
  const auto& members = engine.batch_members();
  EXPECT_EQ(std::count(members.begin(), members.end(), 0u), 1);
  EXPECT_EQ(std::count(members.begin(), members.end(), 1u), 4);
  EXPECT_EQ(stubs[0]->proposed(), 1u);
  EXPECT_EQ(stubs[1]->proposed(), 4u);
}

TEST(BatchedEnsemble, BatchClampsToCombinedPoolCapacity) {
  // Three members, one slot each: a requested batch of 9 yields 3 points.
  auto [engine, stubs] = make_stub_ensemble({1, 1, 1});
  engine.initialize(numeric_domain({1024}), 3);
  const auto batch = engine.propose_batch(9);
  EXPECT_EQ(batch.size(), 3u);
}

TEST(BatchedEnsemble, SimplexTechniquesDeclareAndKeepSingleSlots) {
  // The real simplex state machines declare max_batch() == 1; in any batch
  // the ensemble must give each at most one slot.
  EXPECT_EQ(nelder_mead().max_batch(), 1u);
  EXPECT_EQ(torczon().max_batch(), 1u);
  EXPECT_EQ(pattern_search().max_batch(), 1u);

  std::vector<std::unique_ptr<domain_technique>> pool;
  pool.push_back(std::make_unique<nelder_mead>());
  pool.push_back(std::make_unique<torczon>());
  pool.push_back(std::make_unique<pattern_search>());
  ensemble engine(std::move(pool));
  engine.initialize(numeric_domain({64, 64}), 5);
  for (int round = 0; round < 20; ++round) {
    const auto batch = engine.propose_batch(8);
    ASSERT_LE(batch.size(), 3u);
    ASSERT_GE(batch.size(), 1u);
    const auto& members = engine.batch_members();
    for (std::size_t m = 0; m < 3; ++m) {
      EXPECT_LE(std::count(members.begin(), members.end(), m), 1)
          << "simplex member " << m << " received two slots in one batch";
    }
    std::vector<double> costs;
    for (const point& p : batch) {
      costs.push_back(static_cast<double>(p[0] + p[1]));
    }
    engine.report_batch(costs);
  }
}

TEST(BatchedEnsemble, RandomTechniqueIsUnbounded) {
  EXPECT_EQ(random_technique().max_batch(), kUnbounded);
}

TEST(BatchedEnsemble, SequentialPoolMembersDeclareSingleSlots) {
  // pso advances the proposed particle with the current global best on
  // report(); mutation breeds from the best-as-of-last-report. Both are
  // pinned to one slot per batch like the simplex methods.
  EXPECT_EQ(particle_swarm().max_batch(), 1u);
  EXPECT_EQ(mutation().max_batch(), 1u);
}

// Satellite: fixed-seed determinism of the sequential protocol — two
// identically seeded ensembles driven step by step produce the identical
// proposal stream, member usage and best. Guards the bit-identical claim
// the batched variant builds on.
TEST(BatchedEnsemble, SequentialModeIsDeterministicUnderFixedSeed) {
  const auto cost_of = [](const point& p) {
    return static_cast<double>((p[0] * 31 + p[1] * 7) % 101);
  };
  ensemble a;
  ensemble b;
  const numeric_domain domain({96, 80});
  a.initialize(domain, 0x5eed);
  b.initialize(domain, 0x5eed);
  for (int i = 0; i < 400; ++i) {
    const point pa = a.next_point();
    const point pb = b.next_point();
    ASSERT_EQ(pa, pb) << "proposal streams diverged at step " << i;
    a.report(cost_of(pa));
    b.report(cost_of(pb));
  }
  EXPECT_EQ(a.technique_uses(), b.technique_uses());
  EXPECT_EQ(a.best_cost(), b.best_cost());
  EXPECT_EQ(a.best_point(), b.best_point());
}

// The tentpole's equivalence guarantee at the unit level: driving the
// ensemble through propose_batch(1)/report_batch is bit-identical to the
// sequential next_point()/report() protocol.
TEST(BatchedEnsemble, BatchOfOneIsBitIdenticalToSequential) {
  const auto cost_of = [](const point& p) {
    return static_cast<double>((p[0] * 13 + p[1] * 3) % 97);
  };
  ensemble sequential;
  ensemble batched;
  const numeric_domain domain({64, 48});
  sequential.initialize(domain, 0xabc);
  batched.initialize(domain, 0xabc);
  for (int i = 0; i < 400; ++i) {
    const point ps = sequential.next_point();
    const auto batch = batched.propose_batch(1);
    ASSERT_EQ(batch.size(), 1u);
    ASSERT_EQ(ps, batch[0]) << "streams diverged at step " << i;
    sequential.report(cost_of(ps));
    batched.report_batch({cost_of(batch[0])});
  }
  EXPECT_EQ(sequential.technique_uses(), batched.technique_uses());
  EXPECT_EQ(sequential.best_cost(), batched.best_cost());
}

TEST(BatchedEnsemble, PerMemberAucCreditFollowsProposalOrder) {
  auto [engine, stubs] =
      make_stub_ensemble({kUnbounded, kUnbounded, kUnbounded});
  engine.initialize(numeric_domain({1024}), 7);

  auto batch = engine.propose_batch(3);
  ASSERT_EQ(batch.size(), 3u);
  ASSERT_EQ(engine.batch_members(), (std::vector<std::size_t>{0, 1, 2}));
  // Walking in proposal order: 1.0 is a first best (slot 0 improves),
  // 0.5 improves again (slot 1), 2.0 does not (slot 2).
  engine.report_batch({1.0, 0.5, 2.0});
  EXPECT_DOUBLE_EQ(engine.bandit().auc(0), 1.0);
  EXPECT_DOUBLE_EQ(engine.bandit().auc(1), 1.0);
  EXPECT_DOUBLE_EQ(engine.bandit().auc(2), 0.0);
  EXPECT_EQ(engine.best_cost(), 0.5);

  batch = engine.propose_batch(3);
  ASSERT_EQ(engine.batch_members(), (std::vector<std::size_t>{0, 1, 2}));
  // 3.0 no improvement; 0.1 improves; +inf never counts as improvement.
  engine.report_batch({3.0, 0.1, std::numeric_limits<double>::infinity()});
  // Member 0's window bits: T then F -> (1*1)/(2*3/2) = 1/3.
  EXPECT_DOUBLE_EQ(engine.bandit().auc(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(engine.bandit().auc(1), 1.0);
  EXPECT_DOUBLE_EQ(engine.bandit().auc(2), 0.0);
  EXPECT_EQ(engine.best_cost(), 0.1);

  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(engine.bandit().lifetime_uses(m), 2u);
    EXPECT_EQ(stubs[m]->proposed(), 2u);
    EXPECT_EQ(stubs[m]->reported(), 2u);
  }
}

TEST(BatchedEnsemble, TruncatedReportForgetsSurplusWithoutDoubleCredit) {
  auto [engine, stubs] = make_stub_ensemble({kUnbounded, kUnbounded});
  engine.initialize(numeric_domain({1024}), 11);
  const auto batch = engine.propose_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  const auto members = engine.batch_members();
  // Only the first two evaluations were committed (abort mid-batch).
  engine.report_batch({5.0, 6.0});
  std::vector<std::uint64_t> expected_reports(2, 0);
  ++expected_reports[members[0]];
  ++expected_reports[members[1]];
  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_EQ(stubs[m]->reported(), expected_reports[m]);
    EXPECT_EQ(engine.bandit().lifetime_uses(m), expected_reports[m]);
  }
  // The next batch starts clean: a full report must not resurrect the
  // forgotten slots.
  const auto next = engine.propose_batch(2);
  ASSERT_EQ(next.size(), 2u);
  engine.report_batch({1.0, 2.0});
  EXPECT_EQ(engine.bandit().lifetime_uses(0) + engine.bandit().lifetime_uses(1),
            4u);
}

// Property test: across many rounds of random batch widths and random
// commit truncations, every member's reported-cost count exactly matches
// its committed slots — nothing is double-reported, nothing is dropped,
// and bandit credit stays in lockstep with member reports.
TEST(BatchedEnsemble, NoInterleavingDoubleReportsOrDropsResults) {
  auto [engine, stubs] = make_stub_ensemble({1, 3, kUnbounded});
  engine.initialize(numeric_domain({1024}), 13);
  atf::common::xoshiro256 rng(0xfeed);

  std::vector<std::uint64_t> proposed_slots(3, 0);
  std::vector<std::uint64_t> committed_slots(3, 0);
  for (int round = 0; round < 500; ++round) {
    const std::size_t width = 1 + rng.below(8);
    const auto batch = engine.propose_batch(width);
    ASSERT_GE(batch.size(), 1u);
    ASSERT_LE(batch.size(), std::min<std::size_t>(width, 1 + 3 + width));
    const auto members = engine.batch_members();
    ASSERT_EQ(members.size(), batch.size());
    for (const std::size_t m : members) {
      ++proposed_slots[m];
    }

    // Commit a random prefix (simulating an abort mid-batch), sometimes
    // the full batch.
    const std::size_t committed = rng.below(batch.size() + 1);
    std::vector<double> costs;
    for (std::size_t i = 0; i < committed; ++i) {
      costs.push_back(static_cast<double>(rng.below(1000)));
    }
    for (std::size_t i = 0; i < committed; ++i) {
      ++committed_slots[members[i]];
    }
    engine.report_batch(costs);

    for (std::size_t m = 0; m < 3; ++m) {
      ASSERT_EQ(stubs[m]->proposed(), proposed_slots[m])
          << "member " << m << " round " << round;
      ASSERT_EQ(stubs[m]->reported(), committed_slots[m])
          << "member " << m << " round " << round;
      ASSERT_EQ(engine.bandit().lifetime_uses(m), committed_slots[m])
          << "bandit credit diverged from member reports";
    }
  }
}

// --- search_technique default shim & exhausted-space edges, through the
// --- tuner loop.

double index_cost(const atf::configuration& config) {
  return static_cast<double>(int(config["x"]));
}

/// Proposes each of the first `limit` space indices once — in short batches
/// of at most two — then returns empty batches (exhausted space).
class finite_technique final : public atf::search_technique {
public:
  explicit finite_technique(std::uint64_t limit) : limit_(limit) {}

  [[nodiscard]] atf::configuration get_next_config() override {
    return space().config_at(next_++ % space().size());
  }
  void report_cost(double) override {}

  [[nodiscard]] std::vector<atf::configuration> propose_batch(
      std::size_t max_configs) override {
    const std::uint64_t remaining = limit_ > next_ ? limit_ - next_ : 0;
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>({max_configs, remaining, 2}));
    std::vector<atf::configuration> batch;
    for (std::size_t i = 0; i < count; ++i) {
      batch.push_back(get_next_config());
    }
    return batch;  // empty once exhausted -> the tuner must stop
  }

private:
  std::uint64_t limit_;
  std::uint64_t next_ = 0;
};

/// A purely sequential technique (no batch override): exercises the
/// default one-config propose_batch shim under a wide batch limit.
class shim_only_technique final : public atf::search_technique {
public:
  [[nodiscard]] atf::configuration get_next_config() override {
    return space().config_at(next_++ % space().size());
  }
  void report_cost(double cost) override { last_cost_ = cost; }
  [[nodiscard]] double last_cost() const { return last_cost_; }

private:
  std::uint64_t next_ = 0;
  double last_cost_ = 0.0;
};

TEST(ProposeBatchShim, EmptyProposalStopsTheTuneEarly) {
  auto x = atf::tp("x", atf::interval<int>(1, 50));
  atf::tuner tuner;
  tuner.tuning_parameters(x);
  tuner.search_technique(std::make_unique<finite_technique>(7));
  tuner.abort_condition(atf::cond::evaluations(100));
  const auto result = tuner.tune(atf::cf::pure(index_cost));
  EXPECT_EQ(result.evaluations, 7u) << "the tuner must stop on an empty batch";
  ASSERT_TRUE(result.has_best());
  EXPECT_EQ(*result.best_cost, 1.0);
}

TEST(ProposeBatchShim, ShortProposalsStillReachTheBudgetInBatchedMode) {
  auto x = atf::tp("x", atf::interval<int>(1, 50));
  atf::tuner tuner;
  tuner.tuning_parameters(x);
  // limit > budget: the technique never exhausts, but each batch holds at
  // most two configurations even though the engine offers four slots.
  tuner.search_technique(std::make_unique<finite_technique>(1000));
  tuner.abort_condition(atf::cond::evaluations(20));
  tuner.evaluation(atf::evaluation_mode::batched).concurrency(4);
  const auto result = tuner.tune(atf::cf::pure(index_cost));
  EXPECT_EQ(result.evaluations, 20u);
}

TEST(ProposeBatchShim, DefaultShimKeepsSequentialBehaviourUnderBatchedMode) {
  auto run = [](atf::evaluation_mode mode, std::size_t workers) {
    auto x = atf::tp("x", atf::interval<int>(1, 30));
    atf::tuner tuner;
    tuner.tuning_parameters(x);
    tuner.search_technique(std::make_unique<shim_only_technique>());
    tuner.abort_condition(atf::cond::evaluations(30));
    tuner.evaluation(mode).concurrency(workers);
    return tuner.tune(atf::cf::pure(index_cost));
  };
  const auto sequential = run(atf::evaluation_mode::sequential, 0);
  const auto batched = run(atf::evaluation_mode::batched, 4);
  // The default shim proposes one config per batch, so batched mode walks
  // the identical stream: same count, same best, same history.
  EXPECT_EQ(sequential.evaluations, batched.evaluations);
  EXPECT_EQ(*sequential.best_cost, *batched.best_cost);
  ASSERT_EQ(sequential.history.size(), batched.history.size());
  for (std::size_t i = 0; i < sequential.history.size(); ++i) {
    EXPECT_EQ(sequential.history[i].evaluations,
              batched.history[i].evaluations);
    EXPECT_EQ(sequential.history[i].cost, batched.history[i].cost);
  }
}

// --- opentuner_search end to end on a real constrained space (small).

TEST(BatchedOpentunerSearch, ConcurrencyOneIsBitIdenticalToSequential) {
  auto run = [](atf::evaluation_mode mode, std::size_t workers) {
    auto x = atf::tp("x", atf::interval<int>(1, 64),
                     [](int v) { return v % 3 != 0; });
    atf::tuner tuner;
    tuner.tuning_parameters(x);
    tuner.search_technique(
        std::make_unique<atf::search::opentuner_search>(0x5eed));
    tuner.abort_condition(atf::cond::evaluations(250));
    tuner.evaluation(mode).concurrency(workers);
    return tuner.tune(atf::cf::pure(index_cost));
  };
  const auto sequential = run(atf::evaluation_mode::sequential, 0);
  const auto batched = run(atf::evaluation_mode::batched, 1);
  EXPECT_EQ(sequential.evaluations, batched.evaluations);
  EXPECT_EQ(*sequential.best_cost, *batched.best_cost);
  ASSERT_EQ(sequential.history.size(), batched.history.size());
  for (std::size_t i = 0; i < sequential.history.size(); ++i) {
    EXPECT_EQ(sequential.history[i].evaluations,
              batched.history[i].evaluations);
    EXPECT_EQ(sequential.history[i].cost, batched.history[i].cost);
  }
}

TEST(BatchedOpentunerSearch, WideBatchesAreDeterministicPerWorkerCount) {
  auto run = [](std::size_t workers) {
    auto x = atf::tp("x", atf::interval<int>(1, 64));
    atf::tuner tuner;
    tuner.tuning_parameters(x);
    tuner.search_technique(
        std::make_unique<atf::search::opentuner_search>(0x777));
    tuner.abort_condition(atf::cond::evaluations(250));
    tuner.evaluation(atf::evaluation_mode::batched).concurrency(workers);
    return tuner.tune(atf::cf::pure(index_cost));
  };
  for (const std::size_t workers : {2u, 4u}) {
    const auto first = run(workers);
    const auto second = run(workers);
    EXPECT_EQ(first.evaluations, second.evaluations);
    EXPECT_EQ(*first.best_cost, *second.best_cost);
    ASSERT_EQ(first.history.size(), second.history.size());
  }
}

}  // namespace
