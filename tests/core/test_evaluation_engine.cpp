// Evaluation-engine tests: batch limits and the concurrency clamp, proposal-
// order commits, cache semantics within and across batches, abort truncation
// and exception ordering — the determinism contract batched tuning relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "atf/atf.hpp"
#include "atf/cf/generic.hpp"
#include "atf/common/logging.hpp"
#include "atf/evaluation_engine.hpp"

namespace {

using engine_t = atf::evaluation_engine<double>;

atf::search_space make_space(int lo, int hi) {
  auto x = atf::tp("x", atf::interval<int>(lo, hi));
  return atf::search_space::generate({atf::G(x)},
                                     atf::generation_mode::sequential);
}

std::vector<atf::configuration> configs_of(const atf::search_space& space,
                                           std::vector<std::uint64_t> indices) {
  std::vector<atf::configuration> batch;
  batch.reserve(indices.size());
  for (const std::uint64_t index : indices) {
    batch.push_back(space.config_at(index));
  }
  return batch;
}

TEST(EvaluationEngine, SequentialModeProposesOneAtATime) {
  const auto space = make_space(1, 10);
  engine_t engine(
      space, [](const atf::configuration& c) { return double(int(c["x"])); },
      atf::cond::evaluations(10), {});
  EXPECT_EQ(engine.batch_limit(), 1u);
}

TEST(EvaluationEngine, BatchedModeProposesConcurrencyMany) {
  const auto space = make_space(1, 10);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 4;
  engine_t engine(
      space, [](const atf::configuration& c) { return double(int(c["x"])); },
      atf::cond::evaluations(10), opts);
  EXPECT_EQ(engine.batch_limit(), 4u);
}

TEST(EvaluationEngine, ConcurrencyClampedToLeasableContexts) {
  const auto space = make_space(1, 10);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = atf::detail::max_eval_contexts + 100;
  engine_t engine(
      space, [](const atf::configuration& c) { return double(int(c["x"])); },
      atf::cond::evaluations(10), opts);
  EXPECT_EQ(engine.batch_limit(), atf::detail::max_leased_contexts());
}

TEST(EvaluationEngine, BatchedCommitsInProposalOrder) {
  const auto space = make_space(1, 10);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 4;
  engine_t engine(
      space, [](const atf::configuration& c) { return double(int(c["x"])); },
      atf::cond::evaluations(100), opts);

  const auto batch = configs_of(space, {7, 2, 9, 0});
  const auto outcome = engine.evaluate(batch);
  ASSERT_EQ(outcome.scalars.size(), 4u);
  EXPECT_FALSE(outcome.aborted);
  // x spans 1..10, so index i holds value i+1.
  EXPECT_EQ(outcome.scalars[0], 8.0);
  EXPECT_EQ(outcome.scalars[1], 3.0);
  EXPECT_EQ(outcome.scalars[2], 10.0);
  EXPECT_EQ(outcome.scalars[3], 1.0);

  const auto result = engine.finish();
  EXPECT_EQ(result.evaluations, 4u);
  ASSERT_TRUE(result.has_best());
  EXPECT_EQ(*result.best_cost, 1.0);
  EXPECT_EQ(int(result.best_configuration()["x"]), 1);
}

TEST(EvaluationEngine, WorkersSeeTheirOwnConfiguration) {
  // The launch-geometry property under concurrency: an expression over the
  // tp must evaluate against the *worker's* configuration, not whichever
  // configuration another thread applied last.
  auto x = atf::tp("x", atf::interval<int>(1, 16));
  auto derived = 2 * x;
  const auto space = atf::search_space::generate(
      {atf::G(x)}, atf::generation_mode::sequential);

  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 8;
  std::atomic<int> mismatches{0};
  engine_t engine(
      space,
      [&](const atf::configuration& c) {
        const int v = c["x"];
        if (derived.eval() != 2 * v) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        return double(v);
      },
      atf::cond::evaluations(100), opts);

  const auto batch =
      configs_of(space, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  const auto outcome = engine.evaluate(batch);
  EXPECT_EQ(outcome.scalars.size(), 16u);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EvaluationEngine, WithinBatchDuplicatesEvaluateOnceWhenCached) {
  const auto space = make_space(1, 10);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 4;
  opts.cache = true;
  std::atomic<int> calls{0};
  engine_t engine(
      space,
      [&](const atf::configuration& c) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return double(int(c["x"]));
      },
      atf::cond::evaluations(100), opts);

  const auto outcome = engine.evaluate(configs_of(space, {3, 3, 5, 3}));
  ASSERT_EQ(outcome.scalars.size(), 4u);
  EXPECT_EQ(outcome.scalars[0], 4.0);
  EXPECT_EQ(outcome.scalars[1], 4.0);
  EXPECT_EQ(outcome.scalars[2], 6.0);
  EXPECT_EQ(outcome.scalars[3], 4.0);
  EXPECT_EQ(calls.load(), 2);  // index 3 once, index 5 once

  // A later batch over the same indices is served entirely from the cache.
  (void)engine.evaluate(configs_of(space, {5, 3}));
  EXPECT_EQ(calls.load(), 2);

  const auto result = engine.finish();
  EXPECT_EQ(result.evaluations, 6u);
  EXPECT_EQ(result.cached_evaluations, 4u);
}

TEST(EvaluationEngine, AbortTruncatesTheCommittedBatch) {
  const auto space = make_space(1, 10);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 4;
  engine_t engine(
      space, [](const atf::configuration& c) { return double(int(c["x"])); },
      atf::cond::evaluations(3), opts);

  const auto outcome = engine.evaluate(configs_of(space, {0, 1, 2, 3, 4}));
  EXPECT_TRUE(outcome.aborted);
  EXPECT_EQ(outcome.scalars.size(), 3u);  // configs 3 and 4 never committed
  const auto result = engine.finish();
  EXPECT_EQ(result.evaluations, 3u);
}

TEST(EvaluationEngine, FailedEvaluationsScalarizeToInfinity) {
  const auto space = make_space(1, 10);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 4;
  engine_t engine(
      space,
      [](const atf::configuration& c) -> double {
        const int v = c["x"];
        if (v % 2 == 0) {
          throw atf::evaluation_error("even x unsupported");
        }
        return double(v);
      },
      atf::cond::evaluations(100), opts);

  const auto outcome = engine.evaluate(configs_of(space, {0, 1, 2, 3}));
  ASSERT_EQ(outcome.scalars.size(), 4u);
  EXPECT_EQ(outcome.scalars[0], 1.0);
  EXPECT_TRUE(std::isinf(outcome.scalars[1]));
  EXPECT_EQ(outcome.scalars[2], 3.0);
  EXPECT_TRUE(std::isinf(outcome.scalars[3]));
  const auto result = engine.finish();
  EXPECT_EQ(result.failed_evaluations, 2u);
}

TEST(EvaluationEngine, ForeignExceptionsRethrowAtTheirCommitPosition) {
  const auto space = make_space(1, 10);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 4;
  engine_t engine(
      space,
      [](const atf::configuration& c) -> double {
        const int v = c["x"];
        if (v == 3) {
          throw std::logic_error("not an evaluation failure");
        }
        return double(v);
      },
      atf::cond::evaluations(100), opts);

  // Index 2 holds x = 3; the two earlier entries must commit before the
  // escape propagates — the same order of effects as a sequential loop.
  EXPECT_THROW((void)engine.evaluate(configs_of(space, {0, 1, 2, 3})),
               std::logic_error);
  const auto result = engine.finish();
  EXPECT_EQ(result.evaluations, 2u);
}

TEST(EvaluationEngine, BatchedMatchesSequentialOutcome) {
  const auto space = make_space(1, 50);
  const auto cost = [](const atf::configuration& c) {
    const int v = c["x"];
    return double((v - 20) * (v - 20));
  };

  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = 0; i < 50; ++i) {
    indices.push_back((i * 17) % 50);  // deterministic shuffle
  }

  engine_t sequential(space, cost, atf::cond::evaluations(50), {});
  std::vector<double> seq_scalars;
  for (const std::uint64_t index : indices) {
    const auto outcome = sequential.evaluate(configs_of(space, {index}));
    seq_scalars.insert(seq_scalars.end(), outcome.scalars.begin(),
                       outcome.scalars.end());
  }
  const auto seq_result = sequential.finish();

  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 4;
  engine_t batched(space, cost, atf::cond::evaluations(50), opts);
  std::vector<double> bat_scalars;
  for (std::size_t at = 0; at < indices.size(); at += 4) {
    std::vector<std::uint64_t> slice(
        indices.begin() + at,
        indices.begin() + std::min(at + 4, indices.size()));
    const auto outcome = batched.evaluate(configs_of(space, std::move(slice)));
    bat_scalars.insert(bat_scalars.end(), outcome.scalars.begin(),
                       outcome.scalars.end());
  }
  const auto bat_result = batched.finish();

  EXPECT_EQ(seq_scalars, bat_scalars);
  EXPECT_EQ(seq_result.evaluations, bat_result.evaluations);
  ASSERT_TRUE(seq_result.has_best() && bat_result.has_best());
  EXPECT_EQ(*seq_result.best_cost, *bat_result.best_cost);
  EXPECT_EQ(int(seq_result.best_configuration()["x"]),
            int(bat_result.best_configuration()["x"]));
  ASSERT_EQ(seq_result.history.size(), bat_result.history.size());
  for (std::size_t i = 0; i < seq_result.history.size(); ++i) {
    EXPECT_EQ(seq_result.history[i].evaluations,
              bat_result.history[i].evaluations);
    EXPECT_EQ(seq_result.history[i].cost, bat_result.history[i].cost);
  }
}

// --- the unannotated-cost warning: once per engine lifetime, not per batch.

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::string::size_type at = haystack.find(needle);
       at != std::string::npos; at = haystack.find(needle, at + 1)) {
    ++count;
  }
  return count;
}

/// Runs `body` with the log threshold raised to `warn` and returns
/// everything written to stderr meanwhile.
template <typename Body>
std::string capture_warnings(Body&& body) {
  const auto previous = atf::common::get_log_level();
  atf::common::set_log_level(atf::common::log_level::warn);
  ::testing::internal::CaptureStderr();
  body();
  const std::string output = ::testing::internal::GetCapturedStderr();
  atf::common::set_log_level(previous);
  return output;
}

constexpr const char* kUnsafeCostNeedle = "not annotated thread-safe";

TEST(EvaluationEngine, UnsafeCostWarningFiresOncePerEngineNotPerBatch) {
  const auto space = make_space(1, 20);
  engine_t::options opts;
  opts.mode = atf::evaluation_mode::batched;
  opts.concurrency = 2;
  opts.cost_thread_safe = false;
  engine_t engine(
      space, [](const atf::configuration& c) { return double(int(c["x"])); },
      atf::cond::evaluations(100), opts);

  const std::string output = capture_warnings([&] {
    for (const auto& indices :
         {std::vector<std::uint64_t>{0, 1}, {2, 3}, {4, 5}}) {
      (void)engine.evaluate(configs_of(space, indices));
    }
  });
  EXPECT_EQ(count_occurrences(output, kUnsafeCostNeedle), 1u)
      << "three evaluated batches must produce exactly one warning, got:\n"
      << output;
}

TEST(EvaluationEngine, AnnotatedOrSequentialCostsNeverWarn) {
  const auto space = make_space(1, 20);
  const auto cost = [](const atf::configuration& c) {
    return double(int(c["x"]));
  };

  engine_t::options batched;
  batched.mode = atf::evaluation_mode::batched;
  batched.concurrency = 2;
  batched.cost_thread_safe = true;  // annotated -> silent
  engine_t annotated(space, cost, atf::cond::evaluations(100), batched);

  engine_t::options sequential;
  sequential.cost_thread_safe = false;  // unannotated but sequential -> silent
  engine_t seq(space, cost, atf::cond::evaluations(100), sequential);

  const std::string output = capture_warnings([&] {
    (void)annotated.evaluate(configs_of(space, {0, 1}));
    (void)seq.evaluate(configs_of(space, {2}));
  });
  EXPECT_EQ(count_occurrences(output, kUnsafeCostNeedle), 0u) << output;
}

TEST(EvaluationEngine, TunerDerivesAnnotationFromCostFunction) {
  // Through the tuner: a cf::pure-wrapped cost is annotated thread-safe and
  // must tune silently in batched mode; a bare lambda is not and must warn
  // exactly once for the whole tune (many batches).
  const auto tune = [](auto&& cf) {
    auto x = atf::tp("x", atf::interval<int>(1, 40));
    atf::tuner tuner;
    tuner.tuning_parameters(x);
    tuner.abort_condition(atf::cond::evaluations(40));
    tuner.evaluation(atf::evaluation_mode::batched).concurrency(4);
    (void)tuner.tune(cf);
  };
  const auto plain = [](const atf::configuration& c) {
    return double(int(c["x"]));
  };

  const std::string annotated_output =
      capture_warnings([&] { tune(atf::cf::pure(plain)); });
  EXPECT_EQ(count_occurrences(annotated_output, kUnsafeCostNeedle), 0u)
      << annotated_output;

  const std::string plain_output = capture_warnings([&] { tune(plain); });
  EXPECT_EQ(count_occurrences(plain_output, kUnsafeCostNeedle), 1u)
      << plain_output;
}

}  // namespace
