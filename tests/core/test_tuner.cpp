// Tuner driver tests: exhaustive-by-default exploration, best tracking,
// failed evaluations, abort conditions wired through the loop, multi-
// objective costs and the CSV log.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "atf/atf.hpp"
#include "atf/common/string_utils.hpp"

namespace {

using namespace std::chrono_literals;

TEST(Tuner, ExhaustiveFindsProvablyBestConfiguration) {
  auto x = atf::tp("x", atf::interval<int>(-10, 10));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .tune([](const atf::configuration& config) {
                      const int v = config["x"];
                      return (v - 3) * (v - 3);  // minimum at x = 3
                    });
  ASSERT_TRUE(result.has_best());
  EXPECT_EQ(int(result.best_configuration()["x"]), 3);
  EXPECT_EQ(*result.best_cost, 0);
  EXPECT_EQ(result.evaluations, 21u);  // default abort: one full sweep
  EXPECT_EQ(result.search_space_size, 21u);
}

TEST(Tuner, ConstrainedParametersOnlyEvaluateValidConfigs) {
  const std::size_t n = 24;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto ls =
      atf::tp("LS", atf::interval<std::size_t>(1, n), atf::divides(n / wpt));
  std::uint64_t invalid_seen = 0;
  auto result = atf::tuner{}
                    .tuning_parameters(wpt, ls)
                    .tune([&](const atf::configuration& config) {
                      const std::size_t w = config["WPT"];
                      const std::size_t l = config["LS"];
                      if (n % w != 0 || (n / w) % l != 0) {
                        ++invalid_seen;
                      }
                      return double(w) + double(l);
                    });
  EXPECT_EQ(invalid_seen, 0u);
  EXPECT_EQ(std::size_t(result.best_configuration()["WPT"]), 1u);
  EXPECT_EQ(std::size_t(result.best_configuration()["LS"]), 1u);
}

TEST(Tuner, EmptySearchSpaceThrows) {
  auto a = atf::tp("A", atf::set(3, 5), atf::is_multiple_of(2));
  atf::tuner t;
  t.tuning_parameters(a);
  EXPECT_THROW((void)t.tune([](const atf::configuration&) { return 1; }),
               atf::empty_search_space_error);
}

TEST(Tuner, EvaluationErrorsAreCountedAndSkipped) {
  auto x = atf::tp("x", atf::interval<int>(1, 10));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .tune([](const atf::configuration& config) -> double {
                      const int v = config["x"];
                      if (v % 2 == 0) {
                        throw atf::evaluation_error("even x unsupported");
                      }
                      return double(v);
                    });
  EXPECT_EQ(result.failed_evaluations, 5u);
  EXPECT_EQ(result.evaluations, 10u);
  EXPECT_EQ(int(result.best_configuration()["x"]), 1);
}

TEST(Tuner, AllEvaluationsFailingYieldsNoBest) {
  auto x = atf::tp("x", atf::interval<int>(1, 4));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .tune([](const atf::configuration&) -> double {
                      throw atf::evaluation_error("always fails");
                    });
  EXPECT_FALSE(result.has_best());
  EXPECT_THROW((void)result.best_configuration(), std::logic_error);
  EXPECT_EQ(result.failed_evaluations, 4u);
}

TEST(Tuner, AbortAfterEvaluations) {
  auto x = atf::tp("x", atf::interval<int>(1, 1000));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .abort_condition(atf::cond::evaluations(10))
                    .tune([](const atf::configuration& config) {
                      return double(int(config["x"]));
                    });
  EXPECT_EQ(result.evaluations, 10u);
}

TEST(Tuner, AbortOnCost) {
  auto x = atf::tp("x", atf::interval<int>(1, 1000));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .abort_condition(atf::cond::cost(5.0))
                    .tune([](const atf::configuration& config) {
                      // exhaustive iterates x = 1 first -> cost 999 ... down
                      return double(1000 - int(config["x"]));
                    });
  ASSERT_TRUE(result.has_best());
  EXPECT_LE(*result.best_cost, 5.0);
  EXPECT_LT(result.evaluations, 1000u);
}

TEST(Tuner, AbortFraction) {
  auto x = atf::tp("x", atf::interval<int>(1, 100));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .abort_condition(atf::cond::fraction(0.25))
                    .tune([](const atf::configuration& config) {
                      return double(int(config["x"]));
                    });
  EXPECT_EQ(result.evaluations, 25u);
}

TEST(Tuner, CombinedAbortConditions) {
  auto x = atf::tp("x", atf::interval<int>(1, 100));
  auto result =
      atf::tuner{}
          .tuning_parameters(x)
          .abort_condition(atf::cond::evaluations(50) ||
                           atf::cond::cost(0.5))
          .tune([](const atf::configuration& config) {
            return double(int(config["x"]));
          });
  EXPECT_EQ(result.evaluations, 50u);  // cost never reaches 0.5
}

TEST(Tuner, DurationAbortStopsLongRuns) {
  auto x = atf::tp("x", atf::interval<int>(1, 1'000'000));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .abort_condition(atf::cond::duration(50ms))
                    .tune([](const atf::configuration& config) {
                      return double(int(config["x"]));
                    });
  EXPECT_LT(result.evaluations, 1'000'000u);
  EXPECT_GE(result.elapsed, 50ms);
}

TEST(Tuner, SpeedupOverEvaluationsAborts) {
  auto x = atf::tp("x", atf::interval<int>(1, 100000));
  // Cost improves only on the first evaluation; speedup(1.01, 20) must stop
  // roughly 20 evaluations later.
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .abort_condition(atf::cond::speedup(1.01, 20))
                    .tune([](const atf::configuration& config) {
                      const int v = config["x"];
                      return v == 1 ? 1.0 : 2.0;
                    });
  EXPECT_GE(result.evaluations, 20u);
  EXPECT_LE(result.evaluations, 40u);
}

TEST(Tuner, MultiObjectiveLexicographicOrder) {
  auto x = atf::tp("x", atf::interval<int>(1, 10));
  // runtime is minimized first; energy breaks the tie among x in {1,2,3}.
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .tune([](const atf::configuration& config) {
                      const int v = config["x"];
                      const double runtime = v <= 3 ? 1.0 : 2.0;
                      const double energy = double(10 - v);
                      return atf::cost_pair{runtime, energy};
                    });
  ASSERT_TRUE(result.has_best());
  EXPECT_EQ(int(result.best_configuration()["x"]), 3);
  EXPECT_EQ(result.best_cost->primary, 1.0);
  EXPECT_EQ(result.best_cost->secondary, 7.0);
}

TEST(Tuner, HistoryRecordsMonotoneImprovements) {
  auto x = atf::tp("x", atf::interval<int>(1, 50));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .tune([](const atf::configuration& config) {
                      return double(50 - int(config["x"]));
                    });
  ASSERT_FALSE(result.history.empty());
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LT(result.history[i].cost, result.history[i - 1].cost);
    EXPECT_GT(result.history[i].evaluations,
              result.history[i - 1].evaluations);
  }
  EXPECT_EQ(result.history.back().cost, 0.0);
}

TEST(Tuner, CsvLogIsWritten) {
  const std::string path = ::testing::TempDir() + "atf_tuner_log_test.csv";
  auto x = atf::tp("x", atf::interval<int>(1, 5));
  (void)atf::tuner{}
      .tuning_parameters(x)
      .log_file(path)
      .tune([](const atf::configuration& config) {
        return double(int(config["x"]));
      });
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "evaluation,elapsed_ns,index,x,cost,valid,run,source");
  int rows = 0;
  for (std::string line; std::getline(in, line);) {
    ++rows;
  }
  EXPECT_EQ(rows, 5);
  std::remove(path.c_str());
}

TEST(Tuner, VerboseFalseRestoresLogLevel) {
  const auto original = atf::common::get_log_level();
  atf::common::set_log_level(atf::common::log_level::warn);
  {
    atf::tuner t;
    t.verbose(true);
    EXPECT_EQ(atf::common::get_log_level(), atf::common::log_level::info);
    t.verbose(false);  // used to be a silent no-op, leaving info active
    EXPECT_EQ(atf::common::get_log_level(), atf::common::log_level::warn);

    // verbose(false) without a prior verbose(true) must not touch the level.
    t.verbose(false);
    EXPECT_EQ(atf::common::get_log_level(), atf::common::log_level::warn);

    // Double-enable keeps the first saved level, not info.
    t.verbose(true).verbose(true).verbose(false);
    EXPECT_EQ(atf::common::get_log_level(), atf::common::log_level::warn);
  }
  atf::common::set_log_level(original);
}

// A technique that hands back hand-built configurations covering only a
// subset of the declared parameters, in non-declaration order — what a
// model-based technique proposing partial updates produces.
class partial_config_technique final : public atf::search_technique {
public:
  atf::configuration get_next_config() override {
    atf::configuration config;
    config.add("b", atf::to_tp_value<int>(2));  // omits "a" entirely
    return config;
  }
  void report_cost(double) override {}
};

TEST(Tuner, CsvLogAlignsPartialConfigsByName) {
  const std::string path = ::testing::TempDir() + "atf_tuner_partial_log.csv";
  auto a = atf::tp("a", atf::set(1, 2));
  auto b = atf::tp("b", atf::set(1, 2));
  (void)atf::tuner{}
      .tuning_parameters(a, b)
      .search_technique(std::make_unique<partial_config_technique>())
      .abort_condition(atf::cond::evaluations(2))
      .log_file(path)
      .tune([](const atf::configuration& config) {
        return double(int(config["b"]));
      });
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "evaluation,elapsed_ns,index,a,b,cost,valid,run,source");
  std::string row;
  std::getline(in, row);
  // No space index, "a" absent -> "-", "b" in its own column (positional
  // emission would have written 2 under "a" and thrown on column count).
  const auto fields = atf::common::split(row, ',');
  ASSERT_EQ(fields.size(), 9u);
  EXPECT_EQ(fields[0], "1");
  EXPECT_EQ(fields[2], "-");  // index
  EXPECT_EQ(fields[3], "-");  // a
  EXPECT_EQ(fields[4], "2");  // b
  EXPECT_EQ(fields[6], "1");  // valid
  EXPECT_EQ(fields[7], "-");  // run: no session attached
  EXPECT_EQ(fields[8], "measured");  // source
  std::remove(path.c_str());
}

TEST(Tuner, EvaluationCacheServesDuplicates) {
  auto x = atf::tp("x", atf::interval<int>(1, 10));
  std::uint64_t calls = 0;
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .cache_evaluations(true)
                    .abort_condition(atf::cond::evaluations(30))
                    .tune([&](const atf::configuration& config) {
                      ++calls;
                      return double(int(config["x"]));
                    });
  // Exhaustive wraps around the 10-config space three times: only the
  // first pass hits the cost function.
  EXPECT_EQ(result.evaluations, 30u);
  EXPECT_EQ(calls, 10u);
  EXPECT_EQ(result.cached_evaluations, 20u);
}

TEST(Tuner, EvaluationCacheRemembersFailures) {
  auto x = atf::tp("x", atf::interval<int>(1, 5));
  std::uint64_t calls = 0;
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .cache_evaluations(true)
                    .abort_condition(atf::cond::evaluations(10))
                    .tune([&](const atf::configuration& config) -> double {
                      ++calls;
                      if (int(config["x"]) == 3) {
                        throw atf::evaluation_error("bad config");
                      }
                      return double(int(config["x"]));
                    });
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(result.failed_evaluations, 1u);  // counted once, cached after
  EXPECT_EQ(result.cached_evaluations, 5u);
  EXPECT_EQ(int(result.best_configuration()["x"]), 1);
}

TEST(Tuner, CacheDisabledReevaluates) {
  auto x = atf::tp("x", atf::interval<int>(1, 5));
  std::uint64_t calls = 0;
  (void)atf::tuner{}
      .tuning_parameters(x)
      .abort_condition(atf::cond::evaluations(10))
      .tune([&](const atf::configuration& config) {
        ++calls;
        return double(int(config["x"]));
      });
  EXPECT_EQ(calls, 10u);
}

TEST(Tuner, GroupedParametersExploreTheProduct) {
  auto a = atf::tp("a", atf::set(1, 2));
  auto b = atf::tp("b", atf::set(1, 2), atf::divides(a));
  auto c = atf::tp("c", atf::set(10, 20));
  auto result = atf::tuner{}
                    .tuning_parameters(atf::G(a, b), atf::G(c))
                    .tune([](const atf::configuration& config) {
                      return double(int(config["a"])) +
                             double(int(config["b"])) +
                             double(int(config["c"]));
                    });
  EXPECT_EQ(result.search_space_size, 3u * 2u);
  EXPECT_EQ(result.evaluations, 6u);
  EXPECT_EQ(int(result.best_configuration()["c"]), 10);
}

TEST(Tuner, SpaceIsGeneratedLazilyAndCached) {
  std::uint64_t constraint_calls = 0;
  auto x = atf::tp("x", atf::interval<int>(1, 8), [&](int) {
    ++constraint_calls;
    return true;
  });
  atf::tuner t;
  t.generation(atf::generation_mode::sequential).tuning_parameters(x);
  EXPECT_EQ(constraint_calls, 0u);  // declaring parameters generates nothing

  (void)t.space();
  const std::uint64_t after_first = constraint_calls;
  EXPECT_GT(after_first, 0u);

  (void)t.space();  // cached — no regeneration
  EXPECT_EQ(constraint_calls, after_first);

  t.invalidate_space();
  (void)t.space();
  EXPECT_EQ(constraint_calls, 2 * after_first);
}

TEST(Tuner, CacheIsConsultedBeforeTheCostFunction) {
  // Propose the same configuration twice in a row: with caching on, the
  // cost function must run exactly once — the second proposal is answered
  // from the cache without invoking it.
  class repeat_first final : public atf::search_technique {
  public:
    atf::configuration get_next_config() override {
      return space().config_at(0);
    }
    void report_cost(double) override {}
  };

  auto x = atf::tp("x", atf::interval<int>(1, 5));
  std::uint64_t calls = 0;
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .search_technique(std::make_unique<repeat_first>())
                    .cache_evaluations(true)
                    .abort_condition(atf::cond::evaluations(4))
                    .tune([&](const atf::configuration& config) {
                      ++calls;
                      return double(int(config["x"]));
                    });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(result.evaluations, 4u);
  EXPECT_EQ(result.cached_evaluations, 3u);
}

TEST(Tuner, FullyConstrainedAwaySpaceThrowsEmptySpaceError) {
  // Every value of the dependent parameter is rejected once the constraint
  // chain is applied — the CLTune-on-CLBlast failure mode from the paper's
  // Section VI-A, surfaced as a typed error instead of a silent zero-config
  // sweep.
  auto a = atf::tp("A", atf::set(2, 4, 8));
  auto b = atf::tp("B", atf::set(3, 5, 7), atf::divides(a));
  atf::tuner t;
  t.tuning_parameters(a, b);
  EXPECT_THROW((void)t.tune([](const atf::configuration&) { return 1.0; }),
               atf::empty_search_space_error);
}

TEST(Tuner, BatchedEvaluationMatchesSequentialExhaustive) {
  const auto cost = [](const atf::configuration& config) {
    const int v = config["x"];
    return double((v - 13) * (v - 13));
  };
  auto make = [] { return atf::tp("x", atf::interval<int>(1, 40)); };

  auto x_seq = make();
  const auto sequential =
      atf::tuner{}.tuning_parameters(x_seq).tune(cost);

  auto x_bat = make();
  const auto batched = atf::tuner{}
                           .tuning_parameters(x_bat)
                           .evaluation(atf::evaluation_mode::batched)
                           .concurrency(4)
                           .tune(cost);

  EXPECT_EQ(sequential.evaluations, batched.evaluations);
  EXPECT_EQ(*sequential.best_cost, *batched.best_cost);
  EXPECT_EQ(int(sequential.best_configuration()["x"]),
            int(batched.best_configuration()["x"]));
  ASSERT_EQ(sequential.history.size(), batched.history.size());
  for (std::size_t i = 0; i < sequential.history.size(); ++i) {
    EXPECT_EQ(sequential.history[i].evaluations,
              batched.history[i].evaluations);
    EXPECT_EQ(sequential.history[i].cost, batched.history[i].cost);
  }
}

TEST(Tuner, BatchedEvaluationRespectsEvaluationAbort) {
  auto x = atf::tp("x", atf::interval<int>(1, 100));
  auto result = atf::tuner{}
                    .tuning_parameters(x)
                    .evaluation(atf::evaluation_mode::batched)
                    .concurrency(8)
                    .abort_condition(atf::cond::evaluations(10))
                    .tune([](const atf::configuration& config) {
                      return double(int(config["x"]));
                    });
  EXPECT_EQ(result.evaluations, 10u);  // not rounded up to a batch multiple
}

TEST(Tuner, SharedSlotsFollowEvaluatedConfig) {
  // The launch-geometry use case: an expression over tps must evaluate
  // against the configuration currently being measured.
  const std::size_t n = 16;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto global_size = n / wpt;
  auto result = atf::tuner{}
                    .tuning_parameters(wpt)
                    .tune([&](const atf::configuration& config) {
                      const std::size_t w = config["WPT"];
                      EXPECT_EQ(global_size.eval(), n / w);
                      return double(w);
                    });
  EXPECT_EQ(std::size_t(result.best_configuration()["WPT"]), 1u);
}

}  // namespace
