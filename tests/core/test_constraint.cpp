// Unit tests for constraints, the six aliases, their lazy evaluation against
// tuning parameters, and the logical combinators.
#include <gtest/gtest.h>

#include <cstddef>

#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "atf/tp.hpp"

namespace {

TEST(ConstraintAliases, DividesLiteral) {
  const auto c = atf::divides(12);
  EXPECT_TRUE(c(1));
  EXPECT_TRUE(c(3));
  EXPECT_TRUE(c(12));
  EXPECT_FALSE(c(5));
  EXPECT_FALSE(c(24));
}

TEST(ConstraintAliases, DividesRejectsZeroCandidate) {
  const auto c = atf::divides(12);
  EXPECT_FALSE(c(0));
}

TEST(ConstraintAliases, IsMultipleOf) {
  const auto c = atf::is_multiple_of(4);
  EXPECT_TRUE(c(4));
  EXPECT_TRUE(c(16));
  EXPECT_FALSE(c(6));
  EXPECT_FALSE(c(2));
}

TEST(ConstraintAliases, IsMultipleOfZeroDivisorNeverMatches) {
  const auto c = atf::is_multiple_of(0);
  EXPECT_FALSE(c(4));
}

TEST(ConstraintAliases, Comparisons) {
  EXPECT_TRUE(atf::less_than(5)(4));
  EXPECT_FALSE(atf::less_than(5)(5));
  EXPECT_TRUE(atf::greater_than(5)(6));
  EXPECT_FALSE(atf::greater_than(5)(5));
  EXPECT_TRUE(atf::less_equal(5)(5));
  EXPECT_TRUE(atf::greater_equal(5)(5));
  EXPECT_TRUE(atf::equal(5)(5));
  EXPECT_FALSE(atf::equal(5)(4));
  EXPECT_TRUE(atf::unequal(5)(4));
  EXPECT_FALSE(atf::unequal(5)(5));
}

TEST(ConstraintAliases, PowerOfTwo) {
  const auto c = atf::power_of_two();
  EXPECT_TRUE(c(1));
  EXPECT_TRUE(c(64));
  EXPECT_FALSE(c(0));
  EXPECT_FALSE(c(48));
}

TEST(ConstraintCombinators, AndOrNot) {
  const auto c = atf::divides(24) && atf::greater_than(2);
  EXPECT_TRUE(c(3));
  EXPECT_FALSE(c(2));   // divides but not > 2
  EXPECT_FALSE(c(5));   // > 2 but does not divide

  const auto d = atf::equal(1) || atf::is_multiple_of(8);
  EXPECT_TRUE(d(1));
  EXPECT_TRUE(d(16));
  EXPECT_FALSE(d(4));

  const auto n = !atf::equal(7);
  EXPECT_TRUE(n(6));
  EXPECT_FALSE(n(7));
}

TEST(ConstraintAliases, LazyAgainstTuningParameter) {
  // divides(N / WPT) must observe WPT's *current* value at check time.
  const std::size_t n = 24;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
  const auto c = atf::divides(n / wpt);

  wpt.set_current(2);  // N / WPT == 12
  EXPECT_TRUE(c(std::size_t{6}));
  EXPECT_FALSE(c(std::size_t{5}));

  wpt.set_current(8);  // N / WPT == 3
  EXPECT_TRUE(c(std::size_t{3}));
  EXPECT_FALSE(c(std::size_t{6}));
}

TEST(ConstraintAliases, ExpressionArgument) {
  const std::size_t n = 100;
  auto a = atf::tp("A", atf::interval<std::size_t>(1, 10));
  auto b = atf::tp("B", atf::interval<std::size_t>(1, 10));
  const auto c = atf::less_equal(a * b + 1);
  a.set_current(3);
  b.set_current(4);
  EXPECT_TRUE(c(std::size_t{13}));
  EXPECT_FALSE(c(std::size_t{14}));
  (void)n;
}

TEST(ConstraintCombinators, MixedLazyAndLiteral) {
  auto a = atf::tp("A", atf::interval<int>(1, 10));
  const auto c = atf::is_multiple_of(a) && atf::less_than(20);
  a.set_current(5);
  EXPECT_TRUE(c(15));
  EXPECT_FALSE(c(25));  // multiple of 5 but >= 20
  EXPECT_FALSE(c(12));  // < 20 but not a multiple
}

TEST(Predicate, WrapsArbitraryLambda) {
  const auto c = atf::pred([](int v) { return v % 2 == 0; }) &&
                 atf::pred([](int v) { return v > 0; });
  EXPECT_TRUE(c(4));
  EXPECT_FALSE(c(-4));
  EXPECT_FALSE(c(3));
}

TEST(Expression, ArithmeticOverParameters) {
  auto a = atf::tp("A", atf::interval<int>(1, 10));
  auto b = atf::tp("B", atf::interval<int>(1, 10));
  a.set_current(7);
  b.set_current(3);
  EXPECT_EQ((a + b).eval(), 10);
  EXPECT_EQ((a - b).eval(), 4);
  EXPECT_EQ((a * b).eval(), 21);
  EXPECT_EQ((a / b).eval(), 2);
  EXPECT_EQ((a % b).eval(), 1);
  EXPECT_EQ((a + 1).eval(), 8);
  EXPECT_EQ((2 * b).eval(), 6);
  EXPECT_EQ(atf::max(a, b).eval(), 7);
  EXPECT_EQ(atf::min(a, b).eval(), 3);
  EXPECT_EQ(atf::ceil_div(a, b).eval(), 3);
  EXPECT_EQ(atf::round_up(a, b).eval(), 9);
}

TEST(Expression, NestedExpressionsStayLazy) {
  auto a = atf::tp("A", atf::interval<int>(1, 100));
  const auto e = (a * a + a) / 2;
  a.set_current(4);
  EXPECT_EQ(e.eval(), 10);
  a.set_current(10);
  EXPECT_EQ(e.eval(), 55);
}

}  // namespace
