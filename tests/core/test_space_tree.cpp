// Search-space tree tests: generation against a brute-force oracle, index
// bijection, neighbor moves, dead-prefix pruning, and property sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/common/thread_pool.hpp"
#include "atf/constraint.hpp"
#include "atf/space_tree.hpp"
#include "atf/tp.hpp"

namespace {

using atf::space_tree;

// Brute-force oracle: enumerate the Cartesian product of the saxpy-style
// two-parameter space and filter, mirroring what a product-then-filter
// generator would produce.
std::vector<std::pair<std::size_t, std::size_t>> saxpy_oracle(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> valid;
  for (std::size_t wpt = 1; wpt <= n; ++wpt) {
    if (n % wpt != 0) {
      continue;
    }
    for (std::size_t ls = 1; ls <= n; ++ls) {
      if ((n / wpt) % ls == 0) {
        valid.emplace_back(wpt, ls);
      }
    }
  }
  return valid;
}

space_tree make_saxpy_tree(std::size_t n) {
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto ls =
      atf::tp("LS", atf::interval<std::size_t>(1, n), atf::divides(n / wpt));
  return space_tree::generate(atf::G(wpt, ls));
}

TEST(SpaceTree, SaxpyMatchesOracleSize) {
  for (const std::size_t n : {1u, 2u, 6u, 16u, 24u, 36u, 100u}) {
    EXPECT_EQ(make_saxpy_tree(n).size(), saxpy_oracle(n).size()) << "N=" << n;
  }
}

TEST(SpaceTree, SaxpyEnumeratesExactlyTheOracleConfigs) {
  const std::size_t n = 24;
  const auto tree = make_saxpy_tree(n);
  const auto oracle = saxpy_oracle(n);
  ASSERT_EQ(tree.size(), oracle.size());
  for (std::uint64_t i = 0; i < tree.size(); ++i) {
    const auto values = tree.values_at(i);
    ASSERT_EQ(values.size(), 2u);
    EXPECT_EQ(atf::from_tp_value<std::size_t>(values[0]), oracle[i].first);
    EXPECT_EQ(atf::from_tp_value<std::size_t>(values[1]), oracle[i].second);
  }
}

TEST(SpaceTree, UnconstrainedIsCartesianProduct) {
  auto a = atf::tp("A", atf::set(1, 2, 3));
  auto b = atf::tp("B", atf::set(10, 20));
  auto c = atf::tp("C", atf::set(100, 200, 300, 400));
  const auto tree = space_tree::generate(atf::G(a, b, c));
  EXPECT_EQ(tree.size(), 3u * 2u * 4u);
  // Lexicographic order: last parameter varies fastest.
  const auto first = tree.values_at(0);
  EXPECT_EQ(atf::from_tp_value<int>(first[2]), 100);
  const auto second = tree.values_at(1);
  EXPECT_EQ(atf::from_tp_value<int>(second[2]), 200);
  const auto last = tree.values_at(23);
  EXPECT_EQ(atf::from_tp_value<int>(last[0]), 3);
  EXPECT_EQ(atf::from_tp_value<int>(last[1]), 20);
  EXPECT_EQ(atf::from_tp_value<int>(last[2]), 400);
}

TEST(SpaceTree, DeadPrefixesArePruned) {
  // B's constraint (B == A and B > 3) eliminates every A <= 3 prefix.
  auto a = atf::tp("A", atf::interval<int>(1, 6));
  auto b = atf::tp("B", atf::interval<int>(1, 6),
                   atf::equal(a) && atf::greater_than(3));
  const auto tree = space_tree::generate(atf::G(a, b));
  EXPECT_EQ(tree.size(), 3u);  // A=B in {4,5,6}
  EXPECT_EQ(tree.stats().dead_prefixes, 3u);
  for (std::uint64_t i = 0; i < tree.size(); ++i) {
    const auto values = tree.values_at(i);
    EXPECT_EQ(atf::from_tp_value<int>(values[0]),
              atf::from_tp_value<int>(values[1]));
  }
}

TEST(SpaceTree, EmptySpaceWhenNoValidConfig) {
  auto a = atf::tp("A", atf::set(2, 4, 6));
  auto b = atf::tp("B", atf::set(1, 3, 5), atf::is_multiple_of(a));
  const auto tree = space_tree::generate(atf::G(a, b));
  EXPECT_EQ(tree.size(), 0u);
}

TEST(SpaceTree, SingleParameterConstraint) {
  auto a = atf::tp("A", atf::interval<int>(1, 100), atf::power_of_two());
  const auto tree = space_tree::generate(atf::G(a));
  EXPECT_EQ(tree.size(), 7u);  // 1,2,4,8,16,32,64
}

TEST(SpaceTree, EmptyGroupHasOneEmptyConfig) {
  const auto tree = space_tree::generate(atf::tp_group{});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_TRUE(tree.values_at(0).empty());
}

TEST(SpaceTree, ValuesAtOutOfRangeThrows) {
  const auto tree = make_saxpy_tree(8);
  EXPECT_THROW((void)tree.values_at(tree.size()), std::out_of_range);
}

TEST(SpaceTree, ApplyWritesSharedSlots) {
  const std::size_t n = 24;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto ls =
      atf::tp("LS", atf::interval<std::size_t>(1, n), atf::divides(n / wpt));
  const auto tree = space_tree::generate(atf::G(wpt, ls));
  const auto global_size = n / wpt;  // lazy expression over WPT
  for (std::uint64_t i = 0; i < tree.size(); ++i) {
    tree.apply(i);
    const auto values = tree.values_at(i);
    EXPECT_EQ(wpt.eval(), atf::from_tp_value<std::size_t>(values[0]));
    EXPECT_EQ(ls.eval(), atf::from_tp_value<std::size_t>(values[1]));
    EXPECT_EQ(global_size.eval(), n / wpt.eval());
  }
}

TEST(SpaceTree, RandomIndexIsInRange) {
  const auto tree = make_saxpy_tree(36);
  atf::common::xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(tree.random_index(rng), tree.size());
  }
}

TEST(SpaceTree, NeighborDiffersAndIsValid) {
  const auto tree = make_saxpy_tree(36);
  atf::common::xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto index = tree.random_index(rng);
    const auto neighbor = tree.random_neighbor(index, rng);
    EXPECT_LT(neighbor, tree.size());
    if (tree.size() > 1) {
      EXPECT_NE(neighbor, index);
    }
  }
}

TEST(SpaceTree, NeighborOnSingletonSpaceReturnsSelf) {
  auto a = atf::tp("A", atf::set(1));
  const auto tree = space_tree::generate(atf::G(a));
  atf::common::xoshiro256 rng(1);
  EXPECT_EQ(tree.random_neighbor(0, rng), 0u);
}

TEST(SpaceTree, NeighborReachesWholeSpaceEventually) {
  // The neighbor relation must be irreducible for annealing to work: from a
  // fixed start, repeated neighbor moves should visit every configuration of
  // a small space.
  const auto tree = make_saxpy_tree(12);
  atf::common::xoshiro256 rng(99);
  std::set<std::uint64_t> visited;
  std::uint64_t current = 0;
  for (int i = 0; i < 20000 && visited.size() < tree.size(); ++i) {
    visited.insert(current);
    current = tree.random_neighbor(current, rng);
  }
  EXPECT_EQ(visited.size(), tree.size());
}

TEST(SpaceTree, GenerationVisitsOnlyConstrainedRanges) {
  // ATF iterates ranges per valid prefix: for saxpy the number of candidate
  // values tested is |WPT range| + sum over valid WPT of |LS range| — far
  // fewer than the N*N Cartesian product once constraints bite.
  const std::size_t n = 100;
  const auto tree = make_saxpy_tree(n);
  // 9 divisors of 100 -> 100 + 9*100 candidate checks.
  EXPECT_EQ(tree.stats().visited_values, 100u + 9u * 100u);
  EXPECT_LT(tree.stats().visited_values, n * n);
}

// ---------------------------------------------------------------------------
// Chunked (intra-group) parallel generation must be bit-identical to the
// sequential expansion: same leaf count, node counts, stats, and the exact
// same value at every flat index.
// ---------------------------------------------------------------------------

void expect_trees_identical(const space_tree& sequential,
                            const space_tree& chunked) {
  ASSERT_EQ(chunked.size(), sequential.size());
  ASSERT_EQ(chunked.depth(), sequential.depth());
  EXPECT_EQ(chunked.node_count(), sequential.node_count());
  EXPECT_EQ(chunked.stats().visited_values, sequential.stats().visited_values);
  EXPECT_EQ(chunked.stats().dead_prefixes, sequential.stats().dead_prefixes);
  for (std::uint64_t i = 0; i < sequential.size(); ++i) {
    const auto expected = sequential.values_at(i);
    const auto actual = chunked.values_at(i);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t lvl = 0; lvl < expected.size(); ++lvl) {
      EXPECT_EQ(atf::from_tp_value<std::size_t>(actual[lvl]),
                atf::from_tp_value<std::size_t>(expected[lvl]))
          << "index " << i << " level " << lvl;
    }
  }
}

TEST(SpaceTreeChunked, SaxpyBitIdenticalToSequential) {
  atf::common::thread_pool pool(4);
  for (const std::size_t n : {1u, 2u, 24u, 96u}) {
    const std::size_t kN = n;
    auto wpt =
        atf::tp("WPT", atf::interval<std::size_t>(1, kN), atf::divides(kN));
    auto ls = atf::tp("LS", atf::interval<std::size_t>(1, kN),
                      atf::divides(kN / wpt));
    const auto group = atf::G(wpt, ls);
    const auto sequential = space_tree::generate(group);
    const auto chunked = space_tree::generate(group, pool);
    expect_trees_identical(sequential, chunked);
  }
}

TEST(SpaceTreeChunked, LargeRootRangeUsesMultipleChunks) {
  const std::size_t n = 128;
  auto a = atf::tp("A", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto b = atf::tp("B", atf::interval<std::size_t>(1, n), atf::divides(a));
  const auto group = atf::G(a, b);
  atf::common::thread_pool pool(4);
  const auto chunked = space_tree::generate(group, pool);
  EXPECT_GT(chunked.stats().chunks, 1u);
  expect_trees_identical(space_tree::generate(group), chunked);
}

TEST(SpaceTreeChunked, DeadPrefixesPrunedIdentically) {
  auto a = atf::tp("A", atf::interval<int>(1, 64));
  auto b = atf::tp("B", atf::interval<int>(1, 64),
                   atf::equal(a) && atf::greater_than(32));
  const auto group = atf::G(a, b);
  atf::common::thread_pool pool(4);
  const auto sequential = space_tree::generate(group);
  const auto chunked = space_tree::generate(group, pool);
  ASSERT_EQ(chunked.size(), sequential.size());
  EXPECT_EQ(chunked.stats().dead_prefixes, sequential.stats().dead_prefixes);
  EXPECT_EQ(chunked.node_count(), sequential.node_count());
}

TEST(SpaceTreeChunked, EmptySpaceAndEmptyGroup) {
  atf::common::thread_pool pool(4);
  auto a = atf::tp("A", atf::set(2, 4, 6));
  auto b = atf::tp("B", atf::set(1, 3, 5), atf::is_multiple_of(a));
  EXPECT_EQ(space_tree::generate(atf::G(a, b), pool).size(), 0u);

  const auto empty_group = space_tree::generate(atf::tp_group{}, pool);
  EXPECT_EQ(empty_group.size(), 1u);
  EXPECT_EQ(empty_group.depth(), 0u);
}

TEST(SpaceTreeChunked, ApplyFromAmbientContextAfterParallelGeneration) {
  // After parallel generation the ambient context (id 0) must still drive
  // apply()/eval() — chunk workers write only their leased context slots.
  const std::size_t n = 24;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto ls =
      atf::tp("LS", atf::interval<std::size_t>(1, n), atf::divides(n / wpt));
  atf::common::thread_pool pool(4);
  const auto tree = space_tree::generate(atf::G(wpt, ls), pool);
  const auto global_size = n / wpt;
  for (std::uint64_t i = 0; i < tree.size(); ++i) {
    tree.apply(i);
    const auto values = tree.values_at(i);
    EXPECT_EQ(wpt.eval(), atf::from_tp_value<std::size_t>(values[0]));
    EXPECT_EQ(global_size.eval(), n / wpt.eval());
  }
}

// ---------------------------------------------------------------------------
// Property sweep: for random 3-parameter spaces with divides-chains, the tree
// must match a brute-force oracle exactly.
// ---------------------------------------------------------------------------

class SpaceTreePropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpaceTreePropertyTest, MatchesBruteForceOracle) {
  const std::size_t n = GetParam();
  auto a = atf::tp("A", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto b = atf::tp("B", atf::interval<std::size_t>(1, n), atf::divides(a));
  auto c = atf::tp("C", atf::interval<std::size_t>(1, n),
                   atf::less_equal(a * b));
  const auto tree = space_tree::generate(atf::G(a, b, c));

  std::vector<std::array<std::size_t, 3>> oracle;
  for (std::size_t va = 1; va <= n; ++va) {
    if (n % va != 0) continue;
    for (std::size_t vb = 1; vb <= n; ++vb) {
      if (va % vb != 0) continue;
      for (std::size_t vc = 1; vc <= n; ++vc) {
        if (vc <= va * vb) {
          oracle.push_back({va, vb, vc});
        }
      }
    }
  }

  ASSERT_EQ(tree.size(), oracle.size()) << "N=" << n;
  for (std::uint64_t i = 0; i < tree.size(); ++i) {
    const auto values = tree.values_at(i);
    EXPECT_EQ(atf::from_tp_value<std::size_t>(values[0]), oracle[i][0]);
    EXPECT_EQ(atf::from_tp_value<std::size_t>(values[1]), oracle[i][1]);
    EXPECT_EQ(atf::from_tp_value<std::size_t>(values[2]), oracle[i][2]);
  }
}

INSTANTIATE_TEST_SUITE_P(DividesChains, SpaceTreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 18, 20,
                                           24, 30));

// Property sweep: path_of must be the inverse of index arithmetic — walking
// every leaf must produce strictly increasing, gap-free indices.

class SpaceTreeBijectionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpaceTreeBijectionTest, LeafEnumerationIsBijective) {
  const std::size_t n = GetParam();
  const auto tree = make_saxpy_tree(n);
  std::set<std::vector<std::size_t>> seen;
  for (std::uint64_t i = 0; i < tree.size(); ++i) {
    const auto values = tree.values_at(i);
    std::vector<std::size_t> key;
    for (const auto& v : values) {
      key.push_back(atf::from_tp_value<std::size_t>(v));
    }
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate configuration at index " << i;
  }
  EXPECT_EQ(seen.size(), tree.size());
}

INSTANTIATE_TEST_SUITE_P(Saxpy, SpaceTreeBijectionTest,
                         ::testing::Values(2, 8, 24, 60, 96));

}  // namespace
