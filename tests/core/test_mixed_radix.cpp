// Mixed-radix flat indexing across dependency groups near the 2^64-1
// boundary (search_space: group 0 is the most significant digit). Giant
// spaces are exactly where the lazy storage backend operates, so the index
// arithmetic must stay exact to the last representable configuration — and
// the documented std::overflow_error must fire the moment the product
// exceeds 2^64-1.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search_space.hpp"
#include "atf/tp.hpp"

namespace {

/// Four single-parameter unconstrained groups with the given range sizes.
std::vector<atf::tp_group> make_groups(
    const std::vector<std::size_t>& sizes) {
  std::vector<atf::tp_group> groups;
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    auto param = atf::tp("P" + std::to_string(g),
                         atf::interval<std::size_t>(1, sizes[g]));
    groups.push_back(atf::G(param));
  }
  return groups;
}

/// Hand-rolled mixed-radix decomposition (group 0 most significant).
std::vector<std::uint64_t> decompose(std::uint64_t index,
                                     const std::vector<std::size_t>& sizes) {
  std::vector<std::uint64_t> digits(sizes.size());
  for (std::size_t g = sizes.size(); g-- > 0;) {
    digits[g] = index % sizes[g];
    index /= sizes[g];
  }
  return digits;
}

TEST(MixedRadix, SizeNearTheUint64Boundary) {
  // 65536^3 x 65535 = 2^64 - 2^48: representable, 2^48 short of overflow.
  const std::vector<std::size_t> sizes{65536, 65536, 65536, 65535};
  const auto space = atf::search_space::generate(
      make_groups(sizes), atf::generation_mode::sequential);
  const std::uint64_t expected =
      0xffffffffffffffffull - 0xffffffffffffull;  // 2^64 - 2^48
  EXPECT_EQ(space.size(), expected);
}

TEST(MixedRadix, RoundTripsAtTheBoundaries) {
  const std::vector<std::size_t> sizes{65536, 65536, 65536, 65535};
  const auto space = atf::search_space::generate(
      make_groups(sizes), atf::generation_mode::sequential);

  // Unconstrained interval 1..n: leaf i holds value i+1, so the expected
  // entry values are the mixed-radix digits + 1.
  const std::vector<std::uint64_t> probes{
      0, 1, 65534, 65535, space.size() / 2, space.size() - 2,
      space.size() - 1};
  for (const std::uint64_t index : probes) {
    const auto config = space.config_at(index);
    const auto digits = decompose(index, sizes);
    ASSERT_EQ(config.size(), sizes.size()) << index;
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      EXPECT_EQ(config.get<std::size_t>("P" + std::to_string(g)),
                digits[g] + 1)
          << "index " << index << " group " << g;
    }
    ASSERT_TRUE(config.space_index().has_value());
    EXPECT_EQ(*config.space_index(), index);
  }
}

TEST(MixedRadix, RandomProbesRoundTrip) {
  const std::vector<std::size_t> sizes{65536, 65536, 65536, 65535};
  const auto space = atf::search_space::generate(
      make_groups(sizes), atf::generation_mode::sequential);
  atf::common::xoshiro256 rng(0x60d);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t index = space.random_index(rng);
    ASSERT_LT(index, space.size());
    const auto digits = decompose(index, sizes);
    const auto config = space.config_at(index);
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      ASSERT_EQ(config.get<std::size_t>("P" + std::to_string(g)),
                digits[g] + 1);
    }
  }
}

TEST(MixedRadix, NeighborNearTheLastIndexChangesOneGroup) {
  const std::vector<std::size_t> sizes{65536, 65536, 65536, 65535};
  const auto space = atf::search_space::generate(
      make_groups(sizes), atf::generation_mode::sequential);
  atf::common::xoshiro256 rng(0xfeed);
  const std::uint64_t last = space.size() - 1;
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t neighbor = space.random_neighbor(last, rng);
    ASSERT_LT(neighbor, space.size());
    ASSERT_NE(neighbor, last);
    // A neighbor move changes exactly one group's digit.
    const auto from = decompose(last, sizes);
    const auto to = decompose(neighbor, sizes);
    int changed = 0;
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      changed += from[g] != to[g] ? 1 : 0;
    }
    EXPECT_EQ(changed, 1);
  }
}

TEST(MixedRadix, ProductOverflowThrowsDocumentedError) {
  // 65536^4 = 2^64: one past the largest representable size.
  EXPECT_THROW(
      (void)atf::search_space::generate(
          make_groups({65536, 65536, 65536, 65536}),
          atf::generation_mode::sequential),
      std::overflow_error);
}

TEST(MixedRadix, OverflowThrowsInEveryStorageBackend) {
  for (const auto backend : {atf::space_storage_backend::dense,
                             atf::space_storage_backend::packed,
                             atf::space_storage_backend::lazy}) {
    atf::space_storage_policy storage;
    storage.backend = backend;
    EXPECT_THROW(
        (void)atf::search_space::generate(
            make_groups({65536, 65536, 65536, 65536}),
            atf::generation_mode::sequential, 0, {}, storage),
        std::overflow_error)
        << atf::to_string(backend);
  }
}

}  // namespace
