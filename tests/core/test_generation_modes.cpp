// Equivalence tests for the three search-space generation modes on the
// paper's real kernels: sequential, per-group-parallel (Section V) and
// intra-group chunk-parallel generation must produce bit-identical spaces —
// same size, node counts, parameter names and configuration at every sampled
// flat index — and a fixed-seed tuning run must therefore yield an identical
// improvement history regardless of the mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "atf/atf.hpp"
#include "atf/common/rng.hpp"
#include "atf/kernels/conv2d.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search_space.hpp"
#include "atf/tuner.hpp"

namespace {

using atf::generation_mode;
using atf::search_space;

constexpr generation_mode kModes[] = {generation_mode::sequential,
                                      generation_mode::per_group,
                                      generation_mode::intra_group};

const char* mode_name(generation_mode mode) {
  switch (mode) {
    case generation_mode::sequential: return "sequential";
    case generation_mode::per_group: return "per_group";
    case generation_mode::intra_group: return "intra_group";
  }
  return "?";
}

// Compares the spaces structurally plus on a deterministic sample of flat
// indices (first, last, and fixed-seed random draws) — full enumeration of
// XgemmDirect would dominate test time.
void expect_spaces_identical(const search_space& expected,
                             const search_space& actual,
                             const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  ASSERT_EQ(actual.num_groups(), expected.num_groups()) << label;
  EXPECT_EQ(actual.node_count(), expected.node_count()) << label;
  EXPECT_EQ(actual.parameter_names(), expected.parameter_names()) << label;
  if (expected.empty()) {
    return;
  }
  std::vector<std::uint64_t> indices{0, expected.size() - 1};
  atf::common::xoshiro256 rng(0xa7f);
  for (int i = 0; i < 64; ++i) {
    indices.push_back(rng.below(expected.size()));
  }
  for (const auto index : indices) {
    EXPECT_EQ(actual.config_at(index), expected.config_at(index))
        << label << " index " << index;
  }
}

std::vector<atf::tp_group> xgemm_groups() {
  // Single dependency group: the case per-group parallelism cannot speed up
  // and intra-group chunking exists for. 32^3 keeps the space small enough
  // for tests while still crossing multiple chunks.
  static const auto setup = atf::kernels::xgemm::make_tuning_parameters(
      atf::kernels::xgemm::problem{32, 32, 32},
      atf::kernels::xgemm::size_mode::general);
  return {setup.group()};
}

std::vector<atf::tp_group> conv2d_groups() {
  static const auto setup = atf::kernels::conv2d::make_tuning_parameters(
      atf::kernels::conv2d::problem{32, 32, 3, 3});
  return setup.groups();
}

TEST(GenerationModes, XgemmDirectSingleGroupIsModeInvariant) {
  const auto groups = xgemm_groups();
  const auto sequential =
      search_space::generate(groups, generation_mode::sequential);
  EXPECT_GT(sequential.size(), 0u);
  for (const auto mode : {generation_mode::per_group,
                          generation_mode::intra_group}) {
    expect_spaces_identical(
        sequential, search_space::generate(groups, mode, 4), mode_name(mode));
  }
}

TEST(GenerationModes, Conv2dMultiGroupIsModeInvariant) {
  const auto groups = conv2d_groups();
  ASSERT_EQ(groups.size(), 2u);
  const auto sequential =
      search_space::generate(groups, generation_mode::sequential);
  EXPECT_GT(sequential.size(), 0u);
  for (const auto mode : {generation_mode::per_group,
                          generation_mode::intra_group}) {
    expect_spaces_identical(
        sequential, search_space::generate(groups, mode, 4), mode_name(mode));
  }
}

TEST(GenerationModes, IntraGroupReportsChunkedGeneration) {
  const auto groups = xgemm_groups();
  const auto space =
      search_space::generate(groups, generation_mode::intra_group, 4);
  EXPECT_GT(space.group(0).stats().chunks, 1u);
}

// A divides-chain whose subtree sizes fall off sharply with the root value:
// B ranges over divisors of n/A, so A = 1 owns a subtree scanning the whole
// n-element range per level while large A values are nearly free. This is
// the workload the adaptive re-split path exists for.
std::vector<atf::tp_group> skewed_groups(std::size_t n) {
  auto a = atf::tp("skewA", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto b =
      atf::tp("skewB", atf::interval<std::size_t>(1, n), atf::divides(n / a));
  auto c = atf::tp("skewC", atf::interval<std::size_t>(1, n), atf::divides(b));
  auto d = atf::tp("skewD", atf::interval<std::size_t>(1, n), atf::divides(c));
  return {atf::G(a, b, c, d)};
}

TEST(GenerationModes, SkewedDividesChainIsModeAndWorkerInvariant) {
  const auto groups = skewed_groups(512);
  const auto sequential =
      search_space::generate(groups, generation_mode::sequential);
  ASSERT_GT(sequential.size(), 0u);

  // An aggressive policy so the hot-chunk re-split path actually runs in a
  // test-sized space: split whenever a chunk's visited count exceeds twice
  // the running median (floored at 16), even when no worker is starving.
  atf::generation_policy aggressive;
  aggressive.min_split_visited = 16;
  aggressive.split_only_when_starving = false;

  for (const auto mode :
       {generation_mode::per_group, generation_mode::intra_group}) {
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      const auto space = search_space::generate(groups, mode, workers);
      expect_spaces_identical(sequential, space, mode_name(mode));
      const auto tuned =
          search_space::generate(groups, mode, workers, aggressive);
      expect_spaces_identical(sequential, tuned, mode_name(mode));
      if (mode == generation_mode::intra_group) {
        // The A = 1 subtree alone visits far more than twice the median
        // chunk cost, so at least one re-split must have fired — and the
        // space above is still bit-identical to the sequential one.
        EXPECT_GE(tuned.group(0).stats().resplits, 1u)
            << "workers " << workers;
      }
    }
  }
}

// A fixed-seed tuning run must produce the identical improvement trace no
// matter how the space was generated: the technique only sees flat indices,
// and those are mode-invariant by the bit-identity above.
TEST(GenerationModes, FixedSeedTuningHistoryIsModeInvariant) {
  const auto groups = conv2d_groups();
  const auto cost = [](const atf::configuration& config) {
    // Deterministic synthetic cost over two parameters of different groups.
    const auto tbx = atf::from_tp_value<std::uint64_t>(config.value_of("TBX"));
    const auto unroll =
        atf::from_tp_value<std::uint64_t>(config.value_of("UNROLL"));
    return static_cast<double>((tbx * 37 + unroll * 11) % 101);
  };

  std::vector<std::vector<atf::improvement>> histories;
  for (const auto mode : kModes) {
    atf::tuner t;
    t.tuning_parameters(groups[0], groups[1]);
    t.generation(mode);
    t.search_technique(std::make_unique<atf::search::random_search>(0x5eed));
    t.abort_condition(atf::cond::evaluations(200));
    histories.push_back(t.tune(cost).history);
  }

  ASSERT_FALSE(histories[0].empty());
  for (std::size_t m = 1; m < histories.size(); ++m) {
    ASSERT_EQ(histories[m].size(), histories[0].size()) << mode_name(kModes[m]);
    for (std::size_t i = 0; i < histories[0].size(); ++i) {
      // Compare the deterministic fields only — elapsed is wall-clock.
      EXPECT_EQ(histories[m][i].evaluations, histories[0][i].evaluations);
      EXPECT_EQ(histories[m][i].cost, histories[0][i].cost);
    }
  }
}

}  // namespace
