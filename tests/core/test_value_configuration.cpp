// Unit tests for the type-erased value codec and the configuration class.
#include <gtest/gtest.h>

#include <cstdint>

#include "atf/configuration.hpp"
#include "atf/value.hpp"

namespace {

enum class engine : std::uint8_t { scalar, simd, gpu };

TEST(ValueCodec, RoundTripsFundamentalTypes) {
  EXPECT_EQ(atf::from_tp_value<int>(atf::to_tp_value(-42)), -42);
  EXPECT_EQ(atf::from_tp_value<std::size_t>(atf::to_tp_value(
                std::size_t{1} << 40)),
            std::size_t{1} << 40);
  EXPECT_DOUBLE_EQ(atf::from_tp_value<double>(atf::to_tp_value(2.75)), 2.75);
  EXPECT_FLOAT_EQ(atf::from_tp_value<float>(atf::to_tp_value(1.5f)), 1.5f);
  EXPECT_TRUE(atf::from_tp_value<bool>(atf::to_tp_value(true)));
}

TEST(ValueCodec, RoundTripsEnums) {
  const auto v = atf::to_tp_value(engine::simd);
  EXPECT_EQ(atf::from_tp_value<engine>(v), engine::simd);
}

TEST(ValueCodec, CrossIntegralConversions) {
  // signed <-> unsigned conversions within range are allowed.
  EXPECT_EQ(atf::from_tp_value<std::uint32_t>(atf::to_tp_value(7)), 7u);
  EXPECT_EQ(atf::from_tp_value<std::int32_t>(
                atf::to_tp_value(std::size_t{9})),
            9);
  // integral -> floating point is allowed.
  EXPECT_DOUBLE_EQ(atf::from_tp_value<double>(atf::to_tp_value(3)), 3.0);
}

TEST(ValueCodec, TypeMismatchesThrow) {
  EXPECT_THROW((void)atf::from_tp_value<bool>(atf::to_tp_value(1)),
               atf::value_type_error);
  EXPECT_THROW((void)atf::from_tp_value<int>(atf::to_tp_value(2.5)),
               atf::value_type_error);
  EXPECT_THROW((void)atf::from_tp_value<engine>(atf::to_tp_value(true)),
               atf::value_type_error);
}

TEST(ValueCodec, ToString) {
  EXPECT_EQ(atf::to_string(atf::to_tp_value(true)), "true");
  EXPECT_EQ(atf::to_string(atf::to_tp_value(false)), "false");
  EXPECT_EQ(atf::to_string(atf::to_tp_value(-3)), "-3");
  EXPECT_EQ(atf::to_string(atf::to_tp_value(std::size_t{8})), "8");
  EXPECT_EQ(atf::to_string(atf::to_tp_value(0.5)), "0.5");
}

TEST(ValueCodec, ToDouble) {
  EXPECT_DOUBLE_EQ(atf::to_double(atf::to_tp_value(true)), 1.0);
  EXPECT_DOUBLE_EQ(atf::to_double(atf::to_tp_value(-4)), -4.0);
  EXPECT_DOUBLE_EQ(atf::to_double(atf::to_tp_value(2.25)), 2.25);
}

TEST(Configuration, AddAndTypedAccess) {
  atf::configuration config;
  config.add("WPT", atf::to_tp_value(std::size_t{8}));
  config.add("USE_FMA", atf::to_tp_value(true));
  config.add("ENGINE", atf::to_tp_value(engine::gpu));
  EXPECT_EQ(config.size(), 3u);
  EXPECT_TRUE(config.contains("WPT"));
  EXPECT_FALSE(config.contains("LS"));
  EXPECT_EQ(config.get<std::size_t>("WPT"), 8u);
  EXPECT_TRUE(config.get<bool>("USE_FMA"));
  EXPECT_EQ(config.get<engine>("ENGINE"), engine::gpu);
}

TEST(Configuration, ProxyConvertsImplicitly) {
  atf::configuration config;
  config.add("LS", atf::to_tp_value(std::size_t{64}));
  const std::size_t ls = config["LS"];
  EXPECT_EQ(ls, 64u);
  // Usable directly in arithmetic as the paper's best_config["LS"].
  EXPECT_EQ(std::size_t(config["LS"]) * 2, 128u);
}

TEST(Configuration, DuplicateNameThrows) {
  atf::configuration config;
  config.add("A", atf::to_tp_value(1));
  EXPECT_THROW(config.add("A", atf::to_tp_value(2)), std::invalid_argument);
}

TEST(Configuration, UnknownNameThrows) {
  atf::configuration config;
  EXPECT_THROW((void)config.value_of("missing"), std::out_of_range);
  EXPECT_THROW((void)config.get<int>("missing"), std::out_of_range);
}

TEST(Configuration, ToStringAndEquality) {
  atf::configuration a;
  a.add("WPT", atf::to_tp_value(std::size_t{4}));
  a.add("PAD", atf::to_tp_value(false));
  EXPECT_EQ(a.to_string(), "WPT=4, PAD=false");

  atf::configuration b;
  b.add("WPT", atf::to_tp_value(std::size_t{4}));
  b.add("PAD", atf::to_tp_value(false));
  EXPECT_EQ(a, b);
  b = atf::configuration{};
  b.add("WPT", atf::to_tp_value(std::size_t{5}));
  b.add("PAD", atf::to_tp_value(false));
  EXPECT_FALSE(a == b);
}

TEST(Configuration, SpaceIndexIsCarriedButNotCompared) {
  atf::configuration a;
  a.add("X", atf::to_tp_value(1));
  EXPECT_FALSE(a.space_index().has_value());
  a.set_space_index(17);
  ASSERT_TRUE(a.space_index().has_value());
  EXPECT_EQ(*a.space_index(), 17u);

  atf::configuration b;
  b.add("X", atf::to_tp_value(1));
  EXPECT_EQ(a, b);  // index does not participate in equality
}

}  // namespace
