// Unit tests for atf::range: intervals, step sizes, generators, sets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "atf/range.hpp"

namespace {

TEST(Interval, DefaultStepCoversInclusiveBounds) {
  const auto r = atf::interval<std::size_t>(1, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[4], 5u);
  EXPECT_EQ(r.to_vector(), (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

TEST(Interval, SingleElement) {
  const auto r = atf::interval<int>(7, 7);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 7);
}

TEST(Interval, EmptyWhenEndBeforeBegin) {
  const auto r = atf::interval<int>(5, 4);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.empty());
}

TEST(Interval, StepSize) {
  const auto r = atf::interval<int>(0, 10, 3);
  EXPECT_EQ(r.to_vector(), (std::vector<int>{0, 3, 6, 9}));
}

TEST(Interval, StepLandsExactlyOnEnd) {
  const auto r = atf::interval<int>(0, 9, 3);
  EXPECT_EQ(r.to_vector(), (std::vector<int>{0, 3, 6, 9}));
}

TEST(Interval, NonPositiveStepThrows) {
  EXPECT_THROW((void)atf::interval<int>(0, 10, 0), std::invalid_argument);
  EXPECT_THROW((void)atf::interval<int>(0, 10, -1), std::invalid_argument);
}

TEST(Interval, NegativeBounds) {
  const auto r = atf::interval<int>(-3, 2);
  EXPECT_EQ(r.to_vector(), (std::vector<int>{-3, -2, -1, 0, 1, 2}));
}

TEST(Interval, GeneratorMapsElements) {
  // The paper's example: the first ten powers of two.
  const auto r = atf::interval<std::size_t>(
      1, 10, [](std::size_t i) { return static_cast<std::size_t>(1) << i; });
  ASSERT_EQ(r.size(), 10u);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[9], 1024u);
}

TEST(Interval, GeneratorChangesValueType) {
  // Generator int -> double: the range's value type follows the generator.
  const auto r =
      atf::interval<int>(1, 4, [](int i) { return std::sqrt(double(i)); });
  static_assert(std::is_same_v<decltype(r[0]), double>);
  EXPECT_DOUBLE_EQ(r[3], 2.0);
}

TEST(Interval, GeneratorWithStep) {
  const auto r = atf::interval<int>(0, 8, 4, [](int i) { return i * 10; });
  EXPECT_EQ(r.to_vector(), (std::vector<int>{0, 40, 80}));
}

TEST(Interval, LargeRangeIsLazy) {
  // A 2^32-element interval must cost no memory.
  const auto r = atf::interval<std::uint64_t>(1, std::uint64_t{1} << 32);
  EXPECT_EQ(r.size(), std::uint64_t{1} << 32);
  EXPECT_EQ(r[(std::uint64_t{1} << 32) - 1], std::uint64_t{1} << 32);
}

TEST(Set, VariadicValues) {
  const auto r = atf::set(1, 2, 4, 8);
  EXPECT_EQ(r.to_vector(), (std::vector<int>{1, 2, 4, 8}));
}

TEST(Set, CommonTypePromotion) {
  const auto r = atf::set(1, 2.5);
  static_assert(std::is_same_v<decltype(r[0]), double>);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
}

TEST(Set, InitializerList) {
  const auto r = atf::set<std::size_t>({3, 1, 2});
  EXPECT_EQ(r.to_vector(), (std::vector<std::size_t>{3, 1, 2}));
}

TEST(Set, FromVector) {
  const auto r = atf::set(std::vector<int>{5, 6});
  EXPECT_EQ(r.size(), 2u);
}

enum class layout { row_major, col_major, tiled };

TEST(Set, EnumValues) {
  // Sets may comprise values of an enum type (paper, Section II).
  const auto r = atf::set(layout::row_major, layout::tiled);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[1], layout::tiled);
}

TEST(Set, BoolValues) {
  const auto r = atf::set(true, false);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r[0]);
  EXPECT_FALSE(r[1]);
}

}  // namespace
