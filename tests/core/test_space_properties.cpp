// Randomized property tests for the search-space tree: for seeded random
// constraint systems over small ranges, the tree must agree exactly with a
// brute-force product-then-filter oracle, and indexing/apply/neighbor must
// satisfy their invariants.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/constraint.hpp"
#include "atf/search_space.hpp"
#include "atf/space_tree.hpp"
#include "atf/tp.hpp"

namespace {

/// A randomly generated 4-parameter constraint system. Each parameter gets
/// a random range {1..top} and a random constraint drawn from a small
/// grammar that may reference any *earlier* parameter.
struct random_system {
  std::vector<atf::tp<std::uint64_t>> tps;
  // Oracle predicates, one per parameter; arguments are the values of all
  // previous parameters plus the candidate.
  std::vector<std::function<bool(const std::vector<std::uint64_t>&,
                                 std::uint64_t)>>
      oracle;
  std::vector<std::uint64_t> tops;
};

random_system make_system(std::uint64_t seed) {
  atf::common::xoshiro256 rng(seed);
  random_system sys;
  const char* names[] = {"P0", "P1", "P2", "P3"};
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t top = 2 + rng.below(11);  // 2..12
    sys.tops.push_back(top);
    const int kind = i == 0 ? 0 : static_cast<int>(rng.below(5));
    const std::size_t ref = i == 0 ? 0 : rng.below(static_cast<std::uint64_t>(i));
    const std::uint64_t literal = 1 + rng.below(top);

    switch (kind) {
      case 0:  // unconstrained
        sys.tps.emplace_back(names[i],
                             atf::interval<std::uint64_t>(1, top));
        sys.oracle.emplace_back(
            [](const std::vector<std::uint64_t>&, std::uint64_t) {
              return true;
            });
        break;
      case 1:  // divides earlier parameter
        sys.tps.emplace_back(names[i], atf::interval<std::uint64_t>(1, top),
                             atf::divides(sys.tps[ref]));
        sys.oracle.emplace_back(
            [ref](const std::vector<std::uint64_t>& prefix, std::uint64_t v) {
              return v != 0 && prefix[ref] % v == 0;
            });
        break;
      case 2:  // multiple of earlier parameter
        sys.tps.emplace_back(names[i], atf::interval<std::uint64_t>(1, top),
                             atf::is_multiple_of(sys.tps[ref]));
        sys.oracle.emplace_back(
            [ref](const std::vector<std::uint64_t>& prefix, std::uint64_t v) {
              return prefix[ref] != 0 && v % prefix[ref] == 0;
            });
        break;
      case 3:  // less-equal to earlier * literal
        sys.tps.emplace_back(
            names[i], atf::interval<std::uint64_t>(1, top),
            atf::less_equal(sys.tps[ref] * literal));
        sys.oracle.emplace_back(
            [ref, literal](const std::vector<std::uint64_t>& prefix,
                           std::uint64_t v) {
              return v <= prefix[ref] * literal;
            });
        break;
      default:  // unequal to earlier
        sys.tps.emplace_back(names[i], atf::interval<std::uint64_t>(1, top),
                             atf::unequal(sys.tps[ref]));
        sys.oracle.emplace_back(
            [ref](const std::vector<std::uint64_t>& prefix, std::uint64_t v) {
              return v != prefix[ref];
            });
        break;
    }
  }
  return sys;
}

std::vector<std::vector<std::uint64_t>> brute_force(const random_system& sys) {
  std::vector<std::vector<std::uint64_t>> valid;
  std::vector<std::uint64_t> tuple(4);
  for (tuple[0] = 1; tuple[0] <= sys.tops[0]; ++tuple[0]) {
    for (tuple[1] = 1; tuple[1] <= sys.tops[1]; ++tuple[1]) {
      for (tuple[2] = 1; tuple[2] <= sys.tops[2]; ++tuple[2]) {
        for (tuple[3] = 1; tuple[3] <= sys.tops[3]; ++tuple[3]) {
          bool ok = true;
          for (int i = 0; i < 4 && ok; ++i) {
            const std::vector<std::uint64_t> prefix(tuple.begin(),
                                                    tuple.begin() + i);
            ok = sys.oracle[i](prefix, tuple[i]);
          }
          if (ok) {
            valid.push_back(tuple);
          }
        }
      }
    }
  }
  return valid;
}

class RandomSystemTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSystemTest, TreeAgreesWithBruteForce) {
  auto sys = make_system(GetParam());
  const auto tree = atf::space_tree::generate(
      atf::G(sys.tps[0], sys.tps[1], sys.tps[2], sys.tps[3]));
  const auto oracle = brute_force(sys);
  ASSERT_EQ(tree.size(), oracle.size()) << "seed " << GetParam();
  for (std::uint64_t i = 0; i < tree.size(); ++i) {
    const auto values = tree.values_at(i);
    for (int d = 0; d < 4; ++d) {
      EXPECT_EQ(atf::from_tp_value<std::uint64_t>(values[d]), oracle[i][d])
          << "seed " << GetParam() << " index " << i << " dim " << d;
    }
  }
}

TEST_P(RandomSystemTest, NeighborsStayValidAndDiffer) {
  auto sys = make_system(GetParam());
  const auto tree = atf::space_tree::generate(
      atf::G(sys.tps[0], sys.tps[1], sys.tps[2], sys.tps[3]));
  if (tree.size() < 2) {
    GTEST_SKIP() << "space too small for neighbor moves";
  }
  atf::common::xoshiro256 rng(GetParam() ^ 0xabcdef);
  for (int step = 0; step < 200; ++step) {
    const auto index = tree.random_index(rng);
    const auto neighbor = tree.random_neighbor(index, rng);
    ASSERT_LT(neighbor, tree.size());
    EXPECT_NE(neighbor, index);
  }
}

TEST_P(RandomSystemTest, ApplyReplaysExactValues) {
  auto sys = make_system(GetParam());
  const auto tree = atf::space_tree::generate(
      atf::G(sys.tps[0], sys.tps[1], sys.tps[2], sys.tps[3]));
  atf::common::xoshiro256 rng(GetParam() + 1);
  const std::uint64_t samples = std::min<std::uint64_t>(tree.size(), 64);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto index = tree.random_index(rng);
    tree.apply(index);
    const auto values = tree.values_at(index);
    for (int d = 0; d < 4; ++d) {
      EXPECT_EQ(sys.tps[d].eval(),
                atf::from_tp_value<std::uint64_t>(values[d]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
