// Storage backends behind space_tree (space_storage.hpp): dense is the
// reference; packed and lazy must be bit-identical to it through every
// public access path — values, paths, neighbor moves, applied slots — while
// reporting the memory behaviour they exist for (packed: smaller; lazy:
// bounded by the chunk cache, correct under aggressive eviction).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/common/thread_pool.hpp"
#include "atf/constraint.hpp"
#include "atf/space_tree.hpp"
#include "atf/tp.hpp"

namespace {

constexpr atf::space_storage_backend kBackends[] = {
    atf::space_storage_backend::dense,
    atf::space_storage_backend::packed,
    atf::space_storage_backend::lazy,
};

atf::space_storage_policy policy_for(atf::space_storage_backend backend,
                                     std::size_t cache_bytes = 1 << 20,
                                     std::size_t target_chunks = 0) {
  atf::space_storage_policy policy;
  policy.backend = backend;
  policy.chunk_cache_bytes = cache_bytes;
  policy.lazy_target_chunks = target_chunks;
  return policy;
}

/// A constrained two-group-worthy tree: WPT in 1..32 dividing 32, LS in
/// 1..32 dividing WPT — the saxpy shape the dense tests already pin.
atf::tp_group make_constrained_group() {
  auto wpt =
      atf::tp("WPT", atf::interval<std::size_t>(1, 32), atf::divides(32));
  auto ls = atf::tp("LS", atf::interval<std::size_t>(1, 32),
                    atf::divides(wpt));
  return atf::G(wpt, ls);
}

void expect_backend_identical(const atf::space_tree& dense,
                              const atf::space_tree& other,
                              const char* label) {
  ASSERT_EQ(other.size(), dense.size()) << label;
  ASSERT_EQ(other.depth(), dense.depth()) << label;
  EXPECT_EQ(other.node_count(), dense.node_count()) << label;

  // Every leaf: identical values and identical path (the global dense node
  // numbering is part of the storage contract).
  std::vector<std::uint64_t> expected_path(dense.depth());
  std::vector<std::uint64_t> actual_path(dense.depth());
  for (std::uint64_t index = 0; index < dense.size(); ++index) {
    ASSERT_EQ(other.values_at(index), dense.values_at(index))
        << label << " at leaf " << index;
    dense.path_of(index, expected_path.data());
    other.path_of(index, actual_path.data());
    ASSERT_EQ(actual_path, expected_path) << label << " at leaf " << index;
  }

  // Identically seeded neighbor walks consume the same RNG stream and must
  // visit the same leaves.
  atf::common::xoshiro256 rng_dense(0xabcd);
  atf::common::xoshiro256 rng_other(0xabcd);
  std::uint64_t at_dense = 0;
  std::uint64_t at_other = 0;
  for (int step = 0; step < 200; ++step) {
    at_dense = dense.random_neighbor(at_dense, rng_dense);
    at_other = other.random_neighbor(at_other, rng_other);
    ASSERT_EQ(at_other, at_dense) << label << " at step " << step;
  }
}

TEST(SpaceStorage, AllBackendsMatchDenseOnConstrainedTree) {
  const auto group = make_constrained_group();
  const auto dense = atf::space_tree::generate(group);
  for (const auto backend : kBackends) {
    const auto tree = atf::space_tree::generate(group, policy_for(backend));
    EXPECT_EQ(tree.storage_backend(), backend);
    expect_backend_identical(dense, tree, atf::to_string(backend));
  }
}

TEST(SpaceStorage, BackendsMatchDenseUnderPooledGeneration) {
  const auto group = make_constrained_group();
  const auto dense = atf::space_tree::generate(group);
  atf::common::thread_pool pool(2);
  for (const auto backend : kBackends) {
    const auto tree =
        atf::space_tree::generate(group, pool, {}, policy_for(backend));
    expect_backend_identical(dense, tree, atf::to_string(backend));
  }
}

TEST(SpaceStorage, LazySurvivesAggressiveEviction) {
  // A 1-byte cache budget forces eviction after every chunk; with one chunk
  // per root value, every access regenerates. Results must not change.
  const auto group = make_constrained_group();
  const auto dense = atf::space_tree::generate(group);
  const auto lazy = atf::space_tree::generate(
      group, policy_for(atf::space_storage_backend::lazy, /*cache_bytes=*/1,
                        /*target_chunks=*/1000));
  expect_backend_identical(dense, lazy, "lazy/evicting");
}

TEST(SpaceStorage, LazyAppliesValuesToSlots) {
  // apply() must leave the *applied* values in the tp slots even though
  // lazy regeneration itself writes the slots while re-expanding chunks.
  auto wpt =
      atf::tp("WPT", atf::interval<std::size_t>(1, 32), atf::divides(32));
  auto ls = atf::tp("LS", atf::interval<std::size_t>(1, 32),
                    atf::divides(wpt));
  const auto group = atf::G(wpt, ls);
  const auto dense = atf::space_tree::generate(group);
  const auto lazy = atf::space_tree::generate(
      group,
      policy_for(atf::space_storage_backend::lazy, 1, /*target_chunks=*/8));
  for (std::uint64_t index = 0; index < dense.size(); ++index) {
    const auto values = dense.values_at(index);
    lazy.apply(index);
    EXPECT_EQ(wpt.eval(), atf::from_tp_value<std::size_t>(values[0]))
        << index;
    EXPECT_EQ(ls.eval(), atf::from_tp_value<std::size_t>(values[1])) << index;
  }
}

TEST(SpaceStorage, PackedIsSmallerThanDense) {
  const auto group = make_constrained_group();
  const auto dense = atf::space_tree::generate(group);
  const auto packed = atf::space_tree::generate(
      group, policy_for(atf::space_storage_backend::packed));
  EXPECT_GT(dense.memory_bytes(), 0u);
  EXPECT_LT(packed.memory_bytes(), dense.memory_bytes());
}

TEST(SpaceStorage, LazyMemoryIsBoundedByCache) {
  auto a = atf::tp("A", atf::interval<std::size_t>(1, 64));
  auto b = atf::tp("B", atf::interval<std::size_t>(1, 64));
  const auto group = atf::G(a, b);  // 4096 leaves, 64 chunks
  const auto dense = atf::space_tree::generate(group);
  const auto lazy = atf::space_tree::generate(
      group, policy_for(atf::space_storage_backend::lazy,
                        /*cache_bytes=*/4096, /*target_chunks=*/64));
  // Touch every leaf: the cache must stay near its budget (one materialized
  // chunk may exceed it, but chunks here are ~1.5 KB each).
  atf::common::xoshiro256 rng(0x77);
  for (int i = 0; i < 500; ++i) {
    (void)lazy.values_at(lazy.random_index(rng));
  }
  EXPECT_LT(lazy.memory_bytes(), dense.memory_bytes());
  EXPECT_LT(lazy.memory_bytes(), 64u * 1024u);
}

TEST(SpaceStorage, DropStatsReleasesPerChunkAccounting) {
  const auto group = make_constrained_group();
  atf::common::thread_pool pool(2);
  auto tree = atf::space_tree::generate(group, pool);
  ASSERT_FALSE(tree.stats().per_chunk.empty());
  const auto nodes = tree.stats().nodes;
  const auto chunks = tree.stats().chunks;
  tree.drop_stats();
  EXPECT_TRUE(tree.stats().per_chunk.empty());
  EXPECT_EQ(tree.stats().per_chunk.capacity(), 0u);
  // Aggregates survive.
  EXPECT_EQ(tree.stats().nodes, nodes);
  EXPECT_EQ(tree.stats().chunks, chunks);
}

TEST(SpaceStorage, LazyDropsPerChunkStatsAutomatically) {
  const auto group = make_constrained_group();
  const auto lazy = atf::space_tree::generate(
      group, policy_for(atf::space_storage_backend::lazy));
  EXPECT_TRUE(lazy.stats().per_chunk.empty());
  EXPECT_GT(lazy.stats().chunks, 1u);  // lazy chunks even sequentially
  EXPECT_GT(lazy.stats().nodes, 0u);
}

TEST(SpaceStorage, ChunkStatsReportBytes) {
  const auto group = make_constrained_group();
  const auto dense = atf::space_tree::generate(group);
  ASSERT_FALSE(dense.stats().per_chunk.empty());
  std::uint64_t total = 0;
  for (const auto& chunk : dense.stats().per_chunk) {
    EXPECT_EQ(chunk.bytes, chunk.nodes * 24u);
    total += chunk.bytes;
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(dense.stats().bytes, 0u);
}

TEST(SpaceStorage, EmptyGroupWorksInEveryBackend) {
  for (const auto backend : kBackends) {
    const auto tree =
        atf::space_tree::generate(atf::tp_group{}, policy_for(backend));
    EXPECT_EQ(tree.size(), 1u) << atf::to_string(backend);
    EXPECT_EQ(tree.depth(), 0u);
    EXPECT_EQ(tree.node_count(), 0u);
    EXPECT_TRUE(tree.values_at(0).empty());
    tree.apply(0);
  }
}

TEST(SpaceStorage, EmptySpaceWorksInEveryBackend) {
  // 7 is prime, so no value in 2..3 divides it: the space is empty.
  for (const auto backend : kBackends) {
    auto a = atf::tp("A", atf::set<std::size_t>({7}));
    auto b = atf::tp("B", atf::interval<std::size_t>(2, 3), atf::divides(a));
    const auto tree =
        atf::space_tree::generate(atf::G(a, b), policy_for(backend));
    EXPECT_EQ(tree.size(), 0u) << atf::to_string(backend);
    EXPECT_THROW((void)tree.values_at(0), std::out_of_range);
  }
}

TEST(SpaceStorage, SingleValueTreeWorksInEveryBackend) {
  for (const auto backend : kBackends) {
    auto a = atf::tp("A", atf::set<std::size_t>({5}));
    const auto tree = atf::space_tree::generate(atf::G(a), policy_for(backend));
    ASSERT_EQ(tree.size(), 1u) << atf::to_string(backend);
    EXPECT_EQ(tree.values_at(0).size(), 1u);
    atf::common::xoshiro256 rng(1);
    EXPECT_EQ(tree.random_neighbor(0, rng), 0u);
  }
}

TEST(SpaceStorage, BackendNamesRoundTrip) {
  EXPECT_STREQ(atf::to_string(atf::space_storage_backend::dense), "dense");
  EXPECT_STREQ(atf::to_string(atf::space_storage_backend::packed), "packed");
  EXPECT_STREQ(atf::to_string(atf::space_storage_backend::lazy), "lazy");
}

}  // namespace
