// Multi-group search-space tests: cross-group product, parallel generation
// determinism, configuration materialization and neighbor moves.
#include <gtest/gtest.h>

#include <set>

#include "atf/common/rng.hpp"
#include "atf/constraint.hpp"
#include "atf/search_space.hpp"
#include "atf/tp.hpp"

namespace {

using atf::search_space;

std::vector<atf::tp_group> two_groups() {
  // The paper's Figure 1 example: tp1/tp2 form one group, tp3/tp4 another.
  auto tp1 = atf::tp("tp1", atf::set<std::size_t>({1, 2}));
  auto tp2 =
      atf::tp("tp2", atf::set<std::size_t>({1, 2}), atf::divides(tp1));
  auto tp3 = atf::tp("tp3", atf::set<std::size_t>({1, 2}));
  auto tp4 =
      atf::tp("tp4", atf::set<std::size_t>({1, 2}), atf::divides(tp3));
  return {atf::G(tp1, tp2), atf::G(tp3, tp4)};
}

TEST(SearchSpace, Figure1Example) {
  // Group space: (tp1=1,tp2=1), (tp1=2,tp2=1), (tp1=2,tp2=2) -> 3 configs;
  // two independent identical groups -> 9 total.
  const auto space = search_space::generate(two_groups());
  EXPECT_EQ(space.num_groups(), 2u);
  EXPECT_EQ(space.group(0).size(), 3u);
  EXPECT_EQ(space.group(1).size(), 3u);
  EXPECT_EQ(space.size(), 9u);
  EXPECT_EQ(space.num_parameters(), 4u);
}

TEST(SearchSpace, ParameterNamesInDeclarationOrder) {
  const auto space = search_space::generate(two_groups());
  EXPECT_EQ(space.parameter_names(),
            (std::vector<std::string>{"tp1", "tp2", "tp3", "tp4"}));
}

TEST(SearchSpace, ConfigAtEnumeratesTheFullProduct) {
  const auto space = search_space::generate(two_groups());
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto config = space.config_at(i);
    EXPECT_EQ(config.size(), 4u);
    EXPECT_EQ(config.space_index(), i);
    // every configuration is valid
    const std::size_t v1 = config["tp1"];
    const std::size_t v2 = config["tp2"];
    const std::size_t v3 = config["tp3"];
    const std::size_t v4 = config["tp4"];
    EXPECT_EQ(v1 % v2, 0u);
    EXPECT_EQ(v3 % v4, 0u);
    seen.insert(config.to_string());
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(SearchSpace, ParallelAndSequentialGenerationAgree) {
  const auto parallel = search_space::generate(two_groups(), true);
  const auto sequential = search_space::generate(two_groups(), false);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::uint64_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel.config_at(i).to_string(),
              sequential.config_at(i).to_string());
  }
}

TEST(SearchSpace, EmptyGroupListYieldsEmptySpace) {
  const auto space = search_space::generate({});
  EXPECT_TRUE(space.empty());
}

TEST(SearchSpace, EmptyGroupSpacePropagates) {
  auto a = atf::tp("A", atf::set(3, 5), atf::is_multiple_of(2));
  const auto space = search_space::generate({atf::G(a)});
  EXPECT_TRUE(space.empty());
  EXPECT_EQ(space.size(), 0u);
}

TEST(SearchSpace, ConfigAtOutOfRangeThrows) {
  const auto space = search_space::generate(two_groups());
  EXPECT_THROW((void)space.config_at(space.size()), std::out_of_range);
}

TEST(SearchSpace, NeighborStaysInsideSpaceAndDiffers) {
  const auto space = search_space::generate(two_groups());
  atf::common::xoshiro256 rng(5);
  for (int i = 0; i < 300; ++i) {
    const auto index = space.random_index(rng);
    const auto neighbor = space.random_neighbor(index, rng);
    EXPECT_LT(neighbor, space.size());
    EXPECT_NE(neighbor, index);
  }
}

TEST(SearchSpace, NeighborChangesExactlyOneGroup) {
  const auto space = search_space::generate(two_groups());
  atf::common::xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto index = space.random_index(rng);
    const auto neighbor = space.random_neighbor(index, rng);
    const auto a = space.config_at(index);
    const auto b = space.config_at(neighbor);
    const bool group0_changed = std::size_t(a["tp1"]) != std::size_t(b["tp1"]) ||
                                std::size_t(a["tp2"]) != std::size_t(b["tp2"]);
    const bool group1_changed = std::size_t(a["tp3"]) != std::size_t(b["tp3"]) ||
                                std::size_t(a["tp4"]) != std::size_t(b["tp4"]);
    EXPECT_TRUE(group0_changed != group1_changed)
        << "neighbor must change exactly one group";
  }
}

TEST(SearchSpace, ApplyReplaysValuesIntoSharedSlots) {
  auto tp1 = atf::tp("tp1", atf::set<std::size_t>({1, 2}));
  auto tp2 = atf::tp("tp2", atf::set<std::size_t>({1, 2}), atf::divides(tp1));
  auto tp3 = atf::tp("tp3", atf::set<std::size_t>({3, 4}));
  const auto space =
      search_space::generate({atf::G(tp1, tp2), atf::G(tp3)});
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    space.apply(i);
    const auto config = space.config_at(i);
    EXPECT_EQ(tp1.eval(), std::size_t(config["tp1"]));
    EXPECT_EQ(tp2.eval(), std::size_t(config["tp2"]));
    EXPECT_EQ(tp3.eval(), std::size_t(config["tp3"]));
  }
}

TEST(SearchSpace, ThreeGroupsMixedRadixDecomposition) {
  auto a = atf::tp("a", atf::set(0, 1));
  auto b = atf::tp("b", atf::set(0, 1, 2));
  auto c = atf::tp("c", atf::set(0, 1, 2, 3, 4));
  const auto space =
      search_space::generate({atf::G(a), atf::G(b), atf::G(c)});
  ASSERT_EQ(space.size(), 2u * 3u * 5u);
  // Group 0 is most significant; group 2 varies fastest.
  std::uint64_t index = 0;
  for (int va = 0; va < 2; ++va) {
    for (int vb = 0; vb < 3; ++vb) {
      for (int vc = 0; vc < 5; ++vc, ++index) {
        const auto config = space.config_at(index);
        EXPECT_EQ(int(config["a"]), va);
        EXPECT_EQ(int(config["b"]), vb);
        EXPECT_EQ(int(config["c"]), vc);
      }
    }
  }
}

}  // namespace
