// Direct unit tests for the six abort conditions and the tuning-status
// history queries (Section II Step 3) — complementary to the end-to-end
// tuner tests.
#include <gtest/gtest.h>

#include <chrono>

#include "atf/abort_condition.hpp"

namespace {

using namespace std::chrono_literals;
using atf::improvement;
using atf::tuning_status;

tuning_status make_status() {
  tuning_status status;
  status.search_space_size = 1000;
  status.evaluations = 100;
  status.elapsed = 10s;
  status.best_cost = 5.0;
  status.history = {
      {1s, 10, 20.0},
      {3s, 30, 10.0},
      {8s, 80, 5.0},
  };
  return status;
}

TEST(TuningStatus, BestCostAtTime) {
  const auto status = make_status();
  EXPECT_FALSE(status.best_cost_at(0s).has_value());
  EXPECT_DOUBLE_EQ(*status.best_cost_at(1s), 20.0);
  EXPECT_DOUBLE_EQ(*status.best_cost_at(2s), 20.0);
  EXPECT_DOUBLE_EQ(*status.best_cost_at(5s), 10.0);
  EXPECT_DOUBLE_EQ(*status.best_cost_at(9s), 5.0);
}

TEST(TuningStatus, BestCostAtEvaluation) {
  const auto status = make_status();
  EXPECT_FALSE(status.best_cost_at_evaluation(5).has_value());
  EXPECT_DOUBLE_EQ(*status.best_cost_at_evaluation(10), 20.0);
  EXPECT_DOUBLE_EQ(*status.best_cost_at_evaluation(79), 10.0);
  EXPECT_DOUBLE_EQ(*status.best_cost_at_evaluation(100), 5.0);
}

TEST(AbortConditions, Duration) {
  auto cond = atf::cond::duration(10s);
  auto status = make_status();
  status.elapsed = 9s;
  EXPECT_FALSE(cond(status));
  status.elapsed = 10s;
  EXPECT_TRUE(cond(status));
  // The paper-style spelling.
  auto paper_style = atf::duration<std::chrono::seconds>(10);
  EXPECT_TRUE(paper_style(status));
}

TEST(AbortConditions, Evaluations) {
  auto cond = atf::cond::evaluations(100);
  auto status = make_status();
  status.evaluations = 99;
  EXPECT_FALSE(cond(status));
  status.evaluations = 100;
  EXPECT_TRUE(cond(status));
}

TEST(AbortConditions, Fraction) {
  auto cond = atf::cond::fraction(0.5);
  auto status = make_status();  // space 1000
  status.evaluations = 499;
  EXPECT_FALSE(cond(status));
  status.evaluations = 500;
  EXPECT_TRUE(cond(status));
  EXPECT_THROW(atf::cond::fraction(-0.1), std::invalid_argument);
  EXPECT_THROW(atf::cond::fraction(1.1), std::invalid_argument);
}

TEST(AbortConditions, FractionRoundsUp) {
  auto cond = atf::cond::fraction(0.0015);
  auto status = make_status();  // 0.0015 * 1000 = 1.5 -> 2
  status.evaluations = 1;
  EXPECT_FALSE(cond(status));
  status.evaluations = 2;
  EXPECT_TRUE(cond(status));
}

TEST(AbortConditions, Cost) {
  auto cond = atf::cond::cost(5.0);
  auto status = make_status();
  EXPECT_TRUE(cond(status));  // best is exactly 5.0
  status.best_cost = 5.1;
  EXPECT_FALSE(cond(status));
  status.best_cost.reset();
  EXPECT_FALSE(cond(status));
}

TEST(AbortConditions, SpeedupOverTimeWindow) {
  // Within the last 5 s (from 10 s back to 5 s) the best went from 10.0 to
  // 5.0: a 2.0x improvement. speedup(1.5, 5s) must keep going; speedup(2.5,
  // 5s) must stop.
  auto keep_going = atf::cond::speedup(1.5, 5s);
  auto stop = atf::cond::speedup(2.5, 5s);
  const auto status = make_status();
  EXPECT_FALSE(keep_going(status));
  EXPECT_TRUE(stop(status));
}

TEST(AbortConditions, SpeedupWindowNotElapsedYet) {
  auto cond = atf::cond::speedup(100.0, 1h);
  const auto status = make_status();  // only 10 s elapsed
  EXPECT_FALSE(cond(status));
}

TEST(AbortConditions, SpeedupOverEvaluationWindow) {
  // Within the last 50 evaluations (evaluation 50 -> 100) the best went
  // from 10.0 to 5.0 (2.0x).
  auto keep_going = atf::cond::speedup(1.5, std::uint64_t{50});
  auto stop = atf::cond::speedup(2.5, std::uint64_t{50});
  const auto status = make_status();
  EXPECT_FALSE(keep_going(status));
  EXPECT_TRUE(stop(status));
}

TEST(AbortConditions, LogicalComposition) {
  auto status = make_status();
  auto both = atf::cond::evaluations(100) && atf::cond::cost(5.0);
  EXPECT_TRUE(both(status));
  status.best_cost = 6.0;
  EXPECT_FALSE(both(status));
  auto either = atf::cond::evaluations(200) || atf::cond::cost(6.0);
  EXPECT_TRUE(either(status));
  status.best_cost = 7.0;
  EXPECT_FALSE(either(status));
}

TEST(AbortConditions, DefaultConstructedIsInvalid) {
  atf::abort_condition cond;
  EXPECT_FALSE(cond.valid());
  EXPECT_TRUE(atf::cond::evaluations(1).valid());
}

}  // namespace
