// Tests for the batched-GEMM workload family: space vs validity oracle, the
// pinned two-sided packing pincer (divisibility from the problem below,
// work-group capacity from the device above) that distinguishes its
// constraint structure from XgemmDirect's chain web, bitwise functional
// correctness, and the occupancy-bound model shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "atf/kernels/batched_gemm.hpp"
#include "atf/search_space.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace bg = atf::kernels::batched_gemm;

bg::params params_from(const atf::configuration& config) {
  bg::params p;
  p.tm = config["TM"];
  p.tn = config["TN"];
  p.bpw = config["BPW"];
  p.vecn = config["VECN"];
  p.ku = config["KU"];
  p.lmem_ab = config["LMEM_AB"];
  return p;
}

ocls::device_profile tiny_gpu(std::size_t max_wg, std::size_t lmem) {
  ocls::device_profile dev = ocls::tesla_k20m_profile();
  dev.max_work_group_size = max_wg;
  dev.local_mem_bytes = lmem;
  return dev;
}

TEST(BatchedGemmSpace, EveryGeneratedConfigIsValid) {
  const bg::problem prob{64, 8, 8, 8};
  const auto dev = tiny_gpu(256, 4096);
  auto setup = bg::make_tuning_parameters(prob, dev);
  const auto space = atf::search_space::generate(setup.groups());
  ASSERT_GT(space.size(), 0u);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    EXPECT_TRUE(bg::valid(prob, params_from(space.config_at(i)), dev));
  }
}

TEST(BatchedGemmSpace, CountMatchesBruteForceOracle) {
  const bg::problem prob{64, 8, 8, 8};
  const auto dev = tiny_gpu(256, 4096);
  auto setup = bg::make_tuning_parameters(prob, dev);
  const auto space = atf::search_space::generate(setup.groups());

  std::uint64_t oracle = 0;
  for (std::uint64_t tm = 1; tm <= prob.m; ++tm)
    for (std::uint64_t tn = 1; tn <= prob.n; ++tn)
      for (const std::uint64_t vecn : {1, 2, 4, 8})
        for (std::uint64_t bpw = 1; bpw <= 16; ++bpw)
          for (int lmem = 0; lmem <= 1; ++lmem)
            for (std::uint64_t ku = 1; ku <= prob.k; ++ku) {
              const bg::params p{tm, tn, bpw, vecn, ku, lmem != 0};
              oracle += bg::valid(prob, p, dev) ? 1 : 0;
            }
  EXPECT_EQ(space.size(), oracle);
}

// The pinned packing pincer, the structural signature XgemmDirect lacks:
// BPW's feasible range depends on the register tile through the work-group
// capacity, (m/TM)*(n/TN)*BPW <= max WG. On a 256-thread device with 8x8
// matrices, the finest tile (TM=TN=1, 64 threads per batch) admits BPW up to
// exactly 4, while the coarsest (TM=TN=8, one thread per batch) runs to the
// range cap 16. XgemmDirect has no parameter whose *range* is carved by two
// other parameters this way — its web is pure divisibility chains.
TEST(BatchedGemmSpace, PackingPincerPinned) {
  const bg::problem prob{64, 8, 8, 8};
  const auto dev = tiny_gpu(256, 1ull << 30);  // lmem out of the picture
  auto setup = bg::make_tuning_parameters(prob, dev);
  const auto space = atf::search_space::generate(setup.groups());

  std::uint64_t max_bpw_fine = 0, max_bpw_coarse = 0;
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto p = params_from(space.config_at(i));
    if (p.tm == 1 && p.tn == 1) {
      max_bpw_fine = std::max(max_bpw_fine, p.bpw);
    }
    if (p.tm == 8 && p.tn == 8) {
      max_bpw_coarse = std::max(max_bpw_coarse, p.bpw);
    }
  }
  EXPECT_EQ(max_bpw_fine, 4u);     // 256 / ((8/1)*(8/1)) = 4
  EXPECT_EQ(max_bpw_coarse, 16u);  // capacity 256, range caps at 16
}

class BatchedGemmFunctionalTest
    : public ::testing::TestWithParam<bg::params> {};

TEST_P(BatchedGemmFunctionalTest, MatchesReferenceBitwise) {
  const bg::problem prob{10, 8, 8, 8};
  const auto a = bg::make_a(prob);
  const auto b = bg::make_b(prob);
  const auto expected = bg::reference_gemm(prob, a, b);

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto a_buf = std::make_shared<ocls::buffer<float>>(a);
  auto b_buf = std::make_shared<ocls::buffer<float>>(b);
  auto c_buf = std::make_shared<ocls::buffer<float>>(expected.size());
  ocls::kernel_args args{ocls::arg(static_cast<std::uint64_t>(prob.batch)),
                         ocls::arg(static_cast<std::uint64_t>(prob.m)),
                         ocls::arg(static_cast<std::uint64_t>(prob.n)),
                         ocls::arg(static_cast<std::uint64_t>(prob.k)),
                         ocls::arg(a_buf), ocls::arg(b_buf),
                         ocls::arg(c_buf)};
  const auto p = GetParam();
  (void)queue.launch(bg::make_kernel(), bg::launch_range(prob, p), args,
                     bg::make_defines(prob, p));
  // Exactly-representable operands: every tile/packing shape reproduces the
  // reference bit-for-bit.
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ((*c_buf)[i], expected[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BatchedGemmFunctionalTest,
    ::testing::Values(bg::params{1, 1, 1, 1, 1, false},
                      bg::params{2, 2, 4, 2, 2, true},
                      bg::params{8, 8, 16, 8, 8, false},
                      bg::params{4, 2, 3, 1, 4, true}));

TEST(BatchedGemmModel, PackingAmortizesSchedulingOnGpu) {
  // Tiny per-batch work, many batches: one batch per work-group drowns in
  // per-group scheduling overhead; packing 8 batches per group amortizes it.
  const bg::problem prob{4096, 8, 8, 8};
  bg::params solo;
  solo.tm = solo.tn = 2;
  solo.bpw = 1;
  bg::params packed = solo;
  packed.bpw = 8;

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  const double t_solo =
      queue.launch(bg::make_kernel(), bg::launch_range(prob, solo), {},
                   bg::make_defines(prob, solo))
          .profile_ns();
  const double t_packed =
      queue.launch(bg::make_kernel(), bg::launch_range(prob, packed), {},
                   bg::make_defines(prob, packed))
          .profile_ns();
  EXPECT_LT(t_packed, t_solo);
}

TEST(BatchedGemmModel, OversizedStagingRejectedAtLaunch) {
  const bg::problem prob{64, 32, 32, 32};
  bg::params p;
  p.tm = p.tn = 4;
  p.bpw = 16;  // 16 * (32*32 + 32*32) * 4 bytes = 512 KB > any lmem
  p.lmem_ab = true;
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  EXPECT_THROW((void)queue.launch(bg::make_kernel(), bg::launch_range(prob, p),
                                  {}, bg::make_defines(prob, p)),
               ocls::out_of_resources);
}

}  // namespace
