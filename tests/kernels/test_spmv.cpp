// Tests for the SpMV workload family: the deterministic irregular matrix
// generator, space vs validity oracle with pinned per-device counts, the
// constraint-structure contrast against XgemmDirect (occupancy bounds only —
// no divisibility against the problem size at all), bitwise functional
// correctness across vector widths, and the imbalance-driven model shape.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "atf/kernels/spmv.hpp"
#include "atf/search_space.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace sp = atf::kernels::spmv;

sp::params params_from(const atf::configuration& config) {
  sp::params p;
  p.vw = config["VW"];
  p.wg = config["WG"];
  p.rpb = config["RPB"];
  p.unroll = config["UNROLL"];
  return p;
}

TEST(SpmvMatrix, GeneratorIsDeterministicAndBounded) {
  const sp::problem prob{512, 16, 0.5};
  const auto a = sp::make_matrix(prob);
  const auto b = sp::make_matrix(prob);
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.vals, b.vals);
  EXPECT_EQ(a.x, b.x);

  ASSERT_EQ(a.row_ptr.size(), prob.rows + 1);
  // Row lengths stay inside [mean * (1 - skew), mean * (1 + skew)].
  for (std::size_t row = 0; row < prob.rows; ++row) {
    const std::uint32_t len = a.row_ptr[row + 1] - a.row_ptr[row];
    EXPECT_GE(len, 8u) << "row " << row;
    EXPECT_LE(len, 24u) << "row " << row;
  }
  // A different seed reshuffles the structure.
  const auto c = sp::make_matrix(prob, 0xdead);
  EXPECT_NE(a.row_ptr, c.row_ptr);
}

TEST(SpmvSpace, EveryGeneratedConfigIsValid) {
  const sp::problem prob{256, 8, 0.5};
  const auto dev = ocls::find_device("NVIDIA", "K20m").profile();
  auto setup = sp::make_tuning_parameters(prob, dev);
  const auto space = atf::search_space::generate(setup.groups());
  ASSERT_GT(space.size(), 0u);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    EXPECT_TRUE(sp::valid(prob, params_from(space.config_at(i)), dev));
  }
}

TEST(SpmvSpace, CountMatchesBruteForceOracle) {
  const sp::problem prob{256, 8, 0.5};
  const auto dev = ocls::find_device("", "Iris").profile();
  auto setup = sp::make_tuning_parameters(prob, dev);
  const auto space = atf::search_space::generate(setup.groups());

  std::uint64_t oracle = 0;
  for (const std::uint64_t vw : {1, 2, 4, 8, 16, 32})
    for (const std::uint64_t wg : {32, 64, 128, 256, 512, 1024})
      for (std::uint64_t rpb = 1; rpb <= 8; ++rpb)
        for (const std::uint64_t unroll : {1, 2, 4}) {
          const sp::params p{vw, wg, rpb, unroll};
          oracle += sp::valid(prob, p, dev) ? 1 : 0;
        }
  EXPECT_EQ(space.size(), oracle);
}

// The pinned structural contrast with XgemmDirect: every SpMV constraint is
// an occupancy bound against the *device* (SIMD width, work-group limit);
// none reference the problem size. The space is therefore identical across
// matrix sizes — a property no divides-constrained family has — and its
// per-device cardinality is pinned exactly.
TEST(SpmvSpace, SizeIndependentOfProblem_UnlikeXgemm) {
  const auto k20m = ocls::find_device("NVIDIA", "K20m").profile();
  const auto iris = ocls::find_device("", "Iris").profile();

  const sp::problem small{100, 4, 0.0};
  const sp::problem large{50'000, 64, 0.9};
  auto setup_small = sp::make_tuning_parameters(small, k20m);
  auto setup_large = sp::make_tuning_parameters(large, k20m);
  const auto space_small = atf::search_space::generate(setup_small.groups());
  const auto space_large = atf::search_space::generate(setup_large.groups());
  EXPECT_EQ(space_small.size(), space_large.size());

  // K20m (SIMD 32, max WG 1024): all 6 VW x 6 WG pairs survive -> 36 * 8 * 3.
  EXPECT_EQ(space_small.size(), 864u);
  // Iris 6100 (SIMD 8, max WG 256): 4 VW x 4 WG pairs -> 16 * 8 * 3.
  auto setup_iris = sp::make_tuning_parameters(small, iris);
  EXPECT_EQ(atf::search_space::generate(setup_iris.groups()).size(), 384u);
}

class SpmvFunctionalTest : public ::testing::TestWithParam<sp::params> {};

TEST_P(SpmvFunctionalTest, MatchesReferenceBitwise) {
  const sp::problem prob{300, 12, 0.7};
  const auto m = sp::make_matrix(prob);
  const auto expected = sp::reference_spmv(m);

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto row_ptr = std::make_shared<ocls::buffer<std::uint32_t>>(m.row_ptr);
  auto cols = std::make_shared<ocls::buffer<std::uint32_t>>(m.cols);
  auto vals = std::make_shared<ocls::buffer<float>>(m.vals);
  auto x = std::make_shared<ocls::buffer<float>>(m.x);
  auto y = std::make_shared<ocls::buffer<float>>(prob.rows);
  ocls::kernel_args args{ocls::arg(static_cast<std::uint64_t>(prob.rows)),
                         ocls::arg(row_ptr), ocls::arg(cols), ocls::arg(vals),
                         ocls::arg(x),       ocls::arg(y)};
  const auto p = GetParam();
  (void)queue.launch(sp::make_kernel(), sp::launch_range(prob, p), args,
                     sp::make_defines(prob, p));
  // The generator emits exactly-representable values, so any VW partition
  // of a row sum must agree with the scalar reference bit-for-bit.
  for (std::size_t row = 0; row < prob.rows; ++row) {
    ASSERT_EQ((*y)[row], expected[row]) << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SpmvFunctionalTest,
    ::testing::Values(sp::params{1, 32, 1, 1}, sp::params{4, 128, 2, 2},
                      sp::params{32, 1024, 8, 4}, sp::params{8, 64, 3, 1}));

TEST(SpmvModel, SkewAndRowBlockingShapeTheLandscape) {
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  const sp::params p{4, 128, 1, 1};

  // More irregular rows -> more imbalance -> slower.
  const sp::problem uniform{16'384, 16, 0.0};
  const sp::problem skewed{16'384, 16, 0.9};
  const double t_uniform =
      queue.launch(sp::make_kernel(), sp::launch_range(uniform, p), {},
                   sp::make_defines(uniform, p))
          .profile_ns();
  const double t_skewed =
      queue.launch(sp::make_kernel(), sp::launch_range(skewed, p), {},
                   sp::make_defines(skewed, p))
          .profile_ns();
  EXPECT_GT(t_skewed, t_uniform);

  // Row blocking averages the variance out: RPB = 8 on the skewed matrix
  // beats RPB = 1 with the same lane shape.
  sp::params blocked = p;
  blocked.rpb = 8;
  const double t_blocked =
      queue.launch(sp::make_kernel(), sp::launch_range(skewed, blocked), {},
                   sp::make_defines(skewed, blocked))
          .profile_ns();
  EXPECT_LT(t_blocked, t_skewed);
}

}  // namespace
