// Tests for the stencil2d workload family: space vs validity oracle, the
// pinned constraint-structure contrast against XgemmDirect (two shallow
// divides-chains that decouple when the device bounds vanish, vs the
// intrinsically coupled GEMM web), bitwise functional correctness, and the
// bandwidth-bound model shape.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "atf/kernels/stencil2d.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search_space.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace st = atf::kernels::stencil2d;
namespace xg = atf::kernels::xgemm;

st::params params_from(const atf::configuration& config) {
  st::params p;
  p.tx = config["TX"];
  p.ty = config["TY"];
  p.lx = config["LX"];
  p.ly = config["LY"];
  p.vec = config["VEC"];
  p.unroll = config["UNROLL"];
  p.halo_lmem = config["HALO_LMEM"];
  return p;
}

TEST(Stencil2dProblem, InteriorShape) {
  const st::problem prob{14, 12, 2};
  EXPECT_EQ(prob.int_height(), 10u);
  EXPECT_EQ(prob.int_width(), 8u);
}

TEST(Stencil2dSpace, EveryGeneratedConfigIsValid) {
  const st::problem prob{14, 12, 2};
  const std::size_t max_wg = 64;
  const std::size_t lmem = 1024;
  auto setup = st::make_tuning_parameters(prob, max_wg, lmem);
  const auto space = atf::search_space::generate(setup.groups());
  ASSERT_GT(space.size(), 0u);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto p = params_from(space.config_at(i));
    EXPECT_TRUE(st::valid(prob, p, max_wg, lmem));
  }
}

TEST(Stencil2dSpace, CountMatchesBruteForceOracle) {
  const st::problem prob{14, 12, 2};
  const std::size_t max_wg = 64;
  const std::size_t lmem = 1024;
  auto setup = st::make_tuning_parameters(prob, max_wg, lmem);
  const auto space = atf::search_space::generate(setup.groups());

  std::uint64_t oracle = 0;
  const std::uint64_t vws[] = {1, 2, 4, 8};
  for (std::uint64_t tx = 1; tx <= prob.int_width(); ++tx)
    for (std::uint64_t lx = 1; lx <= prob.int_width(); ++lx)
      for (const auto vec : vws)
        for (std::uint64_t ty = 1; ty <= prob.int_height(); ++ty)
          for (std::uint64_t ly = 1; ly <= prob.int_height(); ++ly)
            for (std::uint64_t unroll = 1; unroll <= prob.radius; ++unroll)
              for (int halo = 0; halo <= 1; ++halo) {
                const st::params p{tx, ty, lx, ly, vec, unroll, halo != 0};
                oracle += st::valid(prob, p, max_wg, lmem) ? 1 : 0;
              }
  EXPECT_EQ(space.size(), oracle);
}

// The pinned structural contrast with XgemmDirect. Stencil constraints are
// two independent divides-chains (TX -> LX -> VEC and TY -> LY) tied only by
// the *device* bounds (work-group size, local memory): lift those bounds and
// the space factorizes exactly into chain counts. XgemmDirect's constraint
// web is intrinsic — its divisibility couplings survive unbounded device
// limits, so its space stays strictly below the unconstrained product.
TEST(Stencil2dSpace, ChainsDecoupleWithoutDeviceBounds_UnlikeXgemm) {
  const st::problem prob{14, 12, 2};  // interior 10 x 8, radius 2
  const std::size_t unbounded_wg = 1ull << 20;
  const std::size_t unbounded_lmem = 1ull << 30;
  auto setup = st::make_tuning_parameters(prob, unbounded_wg, unbounded_lmem);
  const auto space = atf::search_space::generate(setup.groups());

  // x-chain: (TX, LX, VEC) with LX | TX and VEC | (TX / LX).
  std::uint64_t x_chain = 0;
  const std::uint64_t vws[] = {1, 2, 4, 8};
  for (std::uint64_t tx = 1; tx <= prob.int_width(); ++tx)
    for (std::uint64_t lx = 1; lx <= tx; ++lx) {
      if (tx % lx != 0) continue;
      for (const auto vec : vws)
        x_chain += ((tx / lx) % vec == 0) ? 1 : 0;
    }
  // y-chain: (TY, LY) with LY | TY.
  std::uint64_t y_chain = 0;
  for (std::uint64_t ty = 1; ty <= prob.int_height(); ++ty)
    for (std::uint64_t ly = 1; ly <= ty; ++ly)
      y_chain += (ty % ly == 0) ? 1 : 0;

  const std::uint64_t unrolls = 2;  // UNROLL | R, R = 2 -> {1, 2}
  const std::uint64_t halo = 2;     // unbounded lmem admits both
  EXPECT_EQ(space.size(), x_chain * y_chain * unrolls * halo);
  EXPECT_EQ(space.size(), 3456u);  // pinned: 32 * 27 * 2 * 2

  // Same lift applied to XgemmDirect: the web stays coupled.
  const xg::problem gemm_prob{8, 8, 8};
  auto gemm_setup = xg::make_tuning_parameters(
      gemm_prob, xg::size_mode::general,
      xg::device_limits{unbounded_wg, unbounded_lmem});
  const auto gemm_space =
      atf::search_space::generate({gemm_setup.group()});
  std::uint64_t unconstrained = 1;
  for (const auto extent : xg::unconstrained_range_sizes(gemm_prob)) {
    unconstrained *= extent;
  }
  EXPECT_LT(gemm_space.size(), unconstrained);
}

class Stencil2dFunctionalTest : public ::testing::TestWithParam<st::params> {
};

TEST_P(Stencil2dFunctionalTest, MatchesReferenceBitwise) {
  const st::problem prob{18, 16, 2};
  const auto in = st::make_input(prob);
  const auto expected = st::reference_stencil(prob, in);

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto in_buf = std::make_shared<ocls::buffer<float>>(in);
  auto out_buf = std::make_shared<ocls::buffer<float>>(in.size());
  ocls::kernel_args args{
      ocls::arg(static_cast<std::uint64_t>(prob.height)),
      ocls::arg(static_cast<std::uint64_t>(prob.width)),
      ocls::arg(static_cast<std::uint64_t>(prob.radius)),
      ocls::arg(in_buf), ocls::arg(out_buf)};
  const auto p = GetParam();
  (void)queue.launch(st::make_kernel(), st::launch_range(prob, p), args,
                     st::make_defines(prob, p));
  // make_input yields exactly-representable grids, so every tile/vector
  // partition must reproduce the reference bit-for-bit.
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ((*out_buf)[i], expected[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Stencil2dFunctionalTest,
    ::testing::Values(st::params{4, 4, 4, 4, 1, 1, true},
                      st::params{8, 6, 2, 3, 4, 2, false},
                      st::params{12, 14, 4, 7, 1, 2, true},
                      st::params{1, 1, 1, 1, 1, 1, false}));

TEST(Stencil2dModel, HaloStagingBeatsRereadsOnGpu) {
  const st::problem prob{512, 512, 2};
  st::params staged;
  staged.tx = staged.ty = 16;
  staged.lx = staged.ly = 8;
  staged.vec = 2;
  staged.halo_lmem = true;
  st::params unstaged = staged;
  unstaged.halo_lmem = false;

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  const double t_staged =
      queue.launch(st::make_kernel(), st::launch_range(prob, staged), {},
                   st::make_defines(prob, staged))
          .profile_ns();
  const double t_unstaged =
      queue.launch(st::make_kernel(), st::launch_range(prob, unstaged), {},
                   st::make_defines(prob, unstaged))
          .profile_ns();
  EXPECT_LT(t_staged, t_unstaged);
}

TEST(Stencil2dModel, OversizedHaloTileRejectedAtLaunch) {
  const st::problem prob{1024, 1024, 4};
  st::params p;
  p.tx = p.ty = 256;  // (256 + 8)^2 * 4 bytes ~ 272 KB > any lmem
  p.lx = p.ly = 16;
  p.halo_lmem = true;
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  EXPECT_THROW((void)queue.launch(st::make_kernel(), st::launch_range(prob, p),
                                  {}, st::make_defines(prob, p)),
               ocls::out_of_resources);
  p.halo_lmem = false;
  EXPECT_NO_THROW((void)queue.launch(st::make_kernel(),
                                     st::launch_range(prob, p), {},
                                     st::make_defines(prob, p)));
}

}  // namespace
