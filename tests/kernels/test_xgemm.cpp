// Tests for the XgemmDirect workload: the 10-parameter/17-constraint space
// against the standalone validity oracle, launch geometry in both size
// modes, functional correctness against the reference GEMM (including
// ceil-rounded tails), and performance-model sanity properties.
#include <gtest/gtest.h>

#include <memory>

#include "atf/kernels/reference.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search_space.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace xg = atf::kernels::xgemm;

xg::params params_of(const atf::configuration& config) {
  xg::params p;
  p.wgd = config["WGD"];
  p.mdimcd = config["MDIMCD"];
  p.ndimcd = config["NDIMCD"];
  p.mdimad = config["MDIMAD"];
  p.ndimbd = config["NDIMBD"];
  p.kwid = config["KWID"];
  p.vwmd = config["VWMD"];
  p.vwnd = config["VWND"];
  p.pada = config["PADA"];
  p.padb = config["PADB"];
  return p;
}

TEST(XgemmProblem, CaffeInputSizes) {
  const auto is1 = xg::caffe_input_size(1);
  EXPECT_EQ(is1.m, 20u);
  EXPECT_EQ(is1.n, 576u);
  EXPECT_EQ(is1.k, 1u);
  const auto is4 = xg::caffe_input_size(4);
  EXPECT_EQ(is4.m, 10u);
  EXPECT_EQ(is4.n, 500u);
  EXPECT_EQ(is4.k, 64u);
  EXPECT_THROW((void)xg::caffe_input_size(0), std::invalid_argument);
  EXPECT_THROW((void)xg::caffe_input_size(5), std::invalid_argument);
}

TEST(XgemmParams, DefaultsMatchThePaper) {
  const auto d = xg::params::defaults();
  EXPECT_EQ(d.wgd, 8u);   // "the default parameter values are small,
  EXPECT_EQ(d.kwid, 1u);  //  e.g., WGD=8 and KWID=1" (Section VI-B)
}

TEST(XgemmParams, DefinesRoundTrip) {
  xg::params p;
  p.wgd = 32;
  p.vwmd = 4;
  p.pada = false;
  ocls::define_map defines;
  p.to_defines(defines);
  const auto q = xg::params::from_defines(defines);
  EXPECT_EQ(q.wgd, 32u);
  EXPECT_EQ(q.vwmd, 4u);
  EXPECT_FALSE(q.pada);
  EXPECT_TRUE(q.padb);
}

// Every configuration the generated space contains must pass the standalone
// validity oracle — and the space must contain every valid configuration of
// a small brute-forced sub-domain.
class XgemmSpaceOracleTest : public ::testing::TestWithParam<xg::size_mode> {};

TEST_P(XgemmSpaceOracleTest, SpaceMatchesValidityOracle) {
  const xg::size_mode mode = GetParam();
  const xg::problem prob{12, 16, 8};
  const xg::device_limits limits{256, 16 * 1024};
  auto setup = xg::make_tuning_parameters(prob, mode, limits);
  const auto space = atf::search_space::generate({setup.group()});

  // (a) Everything generated is valid.
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto p = params_of(space.config_at(i));
    EXPECT_TRUE(xg::valid(prob, p, mode, limits))
        << "invalid config in space: " << p.to_string();
  }

  // (b) Count equals the brute-force count.
  const std::uint64_t top = 16;
  std::uint64_t oracle = 0;
  const std::uint64_t vws[] = {1, 2, 4, 8};
  for (std::uint64_t wgd = 1; wgd <= top; ++wgd)
    for (std::uint64_t mc = 1; mc <= top; ++mc)
      for (std::uint64_t nc = 1; nc <= top; ++nc)
        for (std::uint64_t ma = 1; ma <= top; ++ma)
          for (std::uint64_t nb = 1; nb <= top; ++nb)
            for (std::uint64_t kw = 1; kw <= top; ++kw)
              for (const auto vm : vws)
                for (const auto vn : vws)
                  for (int pa = 0; pa <= 1; ++pa)
                    for (int pb = 0; pb <= 1; ++pb) {
                      const xg::params p{wgd, mc, nc, ma, nb,
                                         kw,  vm, vn, pa != 0, pb != 0};
                      oracle += xg::valid(prob, p, mode, limits) ? 1 : 0;
                    }
  EXPECT_EQ(space.size(), oracle);
}

INSTANTIATE_TEST_SUITE_P(Modes, XgemmSpaceOracleTest,
                         ::testing::Values(xg::size_mode::general,
                                           xg::size_mode::restricted));

TEST(XgemmSpace, RestrictedIsSubsetOfGeneral) {
  const xg::problem prob{16, 32, 8};
  const xg::device_limits limits{256, 16 * 1024};
  auto restricted = xg::make_tuning_parameters(
      prob, xg::size_mode::restricted, limits);
  auto general =
      xg::make_tuning_parameters(prob, xg::size_mode::general, limits);
  const auto rs = atf::search_space::generate({restricted.group()});
  const auto gs = atf::search_space::generate({general.group()});
  EXPECT_LT(rs.size(), gs.size());
  for (std::uint64_t i = 0; i < rs.size(); ++i) {
    const auto p = params_of(rs.config_at(i));
    EXPECT_TRUE(xg::valid(prob, p, xg::size_mode::general, limits));
  }
}

TEST(XgemmLaunch, GeneralModeRoundsUp) {
  const xg::problem prob{10, 500, 64};
  xg::params p;
  p.wgd = 16;
  p.mdimcd = 4;
  p.ndimcd = 8;
  const auto range = xg::launch_range(prob, p, xg::size_mode::general);
  // ceil(10/16)=1 tile, ceil(500/16)=32 tiles.
  EXPECT_EQ(range.global[0], 1u * 4u);
  EXPECT_EQ(range.global[1], 32u * 8u);
  EXPECT_EQ(range.local[0], 4u);
  EXPECT_EQ(range.local[1], 8u);
}

TEST(XgemmLaunch, RestrictedModeDividesExactly) {
  const xg::problem prob{32, 64, 8};
  xg::params p;
  p.wgd = 16;
  p.mdimcd = 8;
  p.ndimcd = 8;
  const auto range = xg::launch_range(prob, p, xg::size_mode::restricted);
  EXPECT_EQ(range.global[0], 2u * 8u);
  EXPECT_EQ(range.global[1], 4u * 8u);
}

TEST(XgemmValidity, RejectsEachConstraintViolation) {
  const xg::problem prob{32, 32, 32};
  const auto base = [] {
    xg::params p;
    p.wgd = 16;
    p.mdimcd = 8;
    p.ndimcd = 8;
    p.mdimad = 8;
    p.ndimbd = 8;
    p.kwid = 2;
    p.vwmd = 1;
    p.vwnd = 1;
    return p;
  };
  EXPECT_TRUE(xg::valid(prob, base(), xg::size_mode::general));

  auto p = base();
  p.kwid = 3;  // (1) KWID must divide WGD
  EXPECT_FALSE(xg::valid(prob, p, xg::size_mode::general));

  p = base();
  p.mdimcd = 5;  // (2)
  EXPECT_FALSE(xg::valid(prob, p, xg::size_mode::general));

  p = base();
  p.mdimad = 16;
  p.mdimcd = 4;
  p.ndimcd = 2;  // (6): 8 threads, MDIMAD=16 does not divide
  EXPECT_FALSE(xg::valid(prob, p, xg::size_mode::general));

  p = base();
  p.vwmd = 3;  // (15): not in {1,2,4,8}
  EXPECT_FALSE(xg::valid(prob, p, xg::size_mode::general));

  p = base();
  p.vwmd = 4;  // (8): WGD=16 % (MDIMCD*VWMD=32) != 0
  EXPECT_FALSE(xg::valid(prob, p, xg::size_mode::general));

  p = base();
  p.wgd = 12;  // (17): restricted mode needs WGD | 32
  p.mdimcd = p.ndimcd = p.mdimad = p.ndimbd = 4;
  p.kwid = 2;
  EXPECT_TRUE(xg::valid(prob, p, xg::size_mode::general));
  EXPECT_FALSE(xg::valid(prob, p, xg::size_mode::restricted));

  // (12): work-group limit
  p = base();
  EXPECT_FALSE(xg::valid(prob, p, xg::size_mode::general,
                         xg::device_limits{32, 48 * 1024}));

  // (13/14): local memory
  p = base();
  EXPECT_FALSE(
      xg::valid(prob, p, xg::size_mode::general, xg::device_limits{1024, 512}));
}

// Functional correctness: the simulated kernel must compute the exact GEMM
// for valid geometries, including overhanging (ceil-rounded) tiles.
struct functional_case {
  xg::problem prob;
  xg::params p;
};

class XgemmFunctionalTest : public ::testing::TestWithParam<functional_case> {
};

TEST_P(XgemmFunctionalTest, MatchesReferenceGemm) {
  const auto& [prob, p] = GetParam();
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto a = std::make_shared<ocls::buffer<float>>(prob.m * prob.k);
  auto b = std::make_shared<ocls::buffer<float>>(prob.k * prob.n);
  auto c = std::make_shared<ocls::buffer<float>>(prob.m * prob.n);
  for (std::size_t i = 0; i < a->size(); ++i) {
    (*a)[i] = static_cast<float>((i * 7) % 13) - 6.0f;
  }
  for (std::size_t i = 0; i < b->size(); ++i) {
    (*b)[i] = static_cast<float>((i * 5) % 11) - 5.0f;
  }

  std::vector<float> expected(prob.m * prob.n, 0.0f);
  atf::kernels::reference::gemm(prob.m, prob.n, prob.k, a->host(), b->host(),
                                expected);

  ocls::kernel_args args{ocls::arg(static_cast<double>(prob.m)),
                         ocls::arg(static_cast<double>(prob.n)),
                         ocls::arg(static_cast<double>(prob.k)),
                         ocls::arg(a), ocls::arg(b), ocls::arg(c)};
  (void)queue.launch(xg::make_kernel(),
                     xg::launch_range(prob, p, xg::size_mode::general), args,
                     xg::make_defines(prob, p));

  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ((*c)[i], expected[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, XgemmFunctionalTest,
    ::testing::Values(
        // exact tiling
        functional_case{{16, 16, 8}, {8, 4, 4, 4, 4, 2, 1, 1, true, true}},
        // overhanging tiles in both dimensions (ceil-rounded global size)
        functional_case{{10, 50, 7}, {16, 4, 8, 4, 4, 2, 1, 1, true, false}},
        // single-thread work-groups
        functional_case{{6, 6, 6}, {3, 1, 1, 1, 1, 1, 1, 1, false, false}},
        // skinny k=1 (the paper's IS1/IS3 shape)
        functional_case{{20, 36, 1}, {4, 2, 2, 2, 2, 1, 1, 1, true, true}},
        // wide tile, few threads
        functional_case{{24, 24, 12}, {24, 2, 4, 2, 4, 8, 1, 1, true, true}}));

// --- Performance-model sanity properties ---------------------------------

double model_time(const xg::problem& prob, const xg::params& p,
                  const ocls::device& dev) {
  auto ctx = std::make_shared<ocls::context>(dev);
  ocls::command_queue queue(ctx);
  return queue
      .launch(xg::make_kernel(),
              xg::launch_range(prob, p, xg::size_mode::general), {},
              xg::make_defines(prob, p))
      .profile_ns();
}

TEST(XgemmModel, OversizedTilesWasteWork) {
  const xg::problem prob{10, 500, 64};
  xg::params small = xg::params::defaults();  // WGD=8
  xg::params big = small;
  big.wgd = 64;
  big.mdimcd = big.ndimcd = big.mdimad = big.ndimbd = 8;
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  EXPECT_GT(model_time(prob, big, gpu), model_time(prob, small, gpu));
}

TEST(XgemmModel, KPaddingPenalizesLargeTilesWhenKIsOne) {
  // The k-loop depth is rounded up to WGD, so WGD=32 does 32x the MACs of
  // k=1 — decisive for the paper's IS1/IS3 shapes.
  const xg::problem prob{20, 576, 1};
  xg::params small = xg::params::defaults();
  xg::params big = small;
  big.wgd = 32;
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  EXPECT_GT(model_time(prob, big, gpu), 1.5 * model_time(prob, small, gpu));
}

TEST(XgemmModel, CpuRewardsVectorWidth) {
  const xg::problem prob{64, 64, 64};
  xg::params scalar;
  scalar.wgd = 16;
  scalar.mdimcd = 2;
  scalar.ndimcd = 8;
  scalar.mdimad = 2;
  scalar.ndimbd = 8;
  scalar.kwid = 2;
  xg::params vectorized = scalar;
  vectorized.vwmd = 8;
  const auto cpu = ocls::find_device("Intel", "Xeon");
  EXPECT_GT(model_time(prob, scalar, cpu),
            1.5 * model_time(prob, vectorized, cpu));
}

TEST(XgemmModel, GpuCaresLessAboutVectorWidthThanCpu) {
  const xg::problem prob{64, 64, 64};
  xg::params scalar;
  scalar.wgd = 16;
  scalar.mdimcd = 2;
  scalar.ndimcd = 8;
  scalar.mdimad = 2;
  scalar.ndimbd = 8;
  scalar.kwid = 2;
  xg::params vectorized = scalar;
  vectorized.vwmd = 8;
  const auto cpu = ocls::find_device("Intel", "Xeon");
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  const double cpu_gain =
      model_time(prob, scalar, cpu) / model_time(prob, vectorized, cpu);
  const double gpu_gain =
      model_time(prob, scalar, gpu) / model_time(prob, vectorized, gpu);
  EXPECT_GT(cpu_gain, gpu_gain);
}

TEST(XgemmModel, UnrollingHelpsUpToAPoint) {
  const xg::problem prob{64, 64, 64};
  xg::params p;
  p.wgd = 32;
  p.mdimcd = p.ndimcd = p.mdimad = p.ndimbd = 8;
  xg::params unrolled = p;
  unrolled.kwid = 8;
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  EXPECT_GT(model_time(prob, p, gpu), model_time(prob, unrolled, gpu));
}

TEST(XgemmModel, PaddingAvoidsBankConflictsOnGpuOnly) {
  const xg::problem prob{64, 64, 64};
  xg::params padded;
  padded.wgd = 32;
  padded.mdimcd = padded.ndimcd = padded.mdimad = padded.ndimbd = 8;
  padded.pada = padded.padb = true;
  xg::params bare = padded;
  bare.pada = bare.padb = false;
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  const auto cpu = ocls::find_device("Intel", "Xeon");
  EXPECT_GT(model_time(prob, bare, gpu), model_time(prob, padded, gpu));
  EXPECT_DOUBLE_EQ(model_time(prob, bare, cpu), model_time(prob, padded, cpu));
}

TEST(XgemmModel, HugeTileExceedsLocalMemoryAtLaunch) {
  const xg::problem prob{256, 256, 256};
  xg::params p;
  p.wgd = 128;  // 2*128^2*4 = 128 KB > 48 KB
  p.mdimcd = p.ndimcd = p.mdimad = p.ndimbd = 8;
  p.kwid = 2;
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  EXPECT_THROW(
      (void)queue.launch(xg::make_kernel(),
                         xg::launch_range(prob, p, xg::size_mode::general), {},
                         xg::make_defines(prob, p)),
      ocls::out_of_resources);
}

TEST(XgemmModel, UnconstrainedRangeSizes) {
  const auto tops = xg::unconstrained_range_sizes({20, 576, 25});
  ASSERT_EQ(tops.size(), 10u);
  EXPECT_EQ(tops[0], 576u);  // max extent
  EXPECT_EQ(tops[6], 4u);    // VWMD
  EXPECT_EQ(tops[9], 2u);    // PADB
  const auto capped = xg::unconstrained_range_sizes({20, 576, 25}, 64);
  EXPECT_EQ(capped[0], 64u);
}

}  // namespace
