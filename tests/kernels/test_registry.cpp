// Tests for the kernel registry: name round-trips, input-size parsing, space
// construction for every registered family, fixed-seed tuning determinism,
// and the acceptance property of the suite — each new family tunes end to
// end on at least two device profiles and its tuned best passes the
// functional reference check.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "atf/kernels/registry.hpp"
#include "atf/search_space.hpp"
#include "atf/tuner.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace reg = atf::kernels::registry;

/// Small per-family sizes that keep space generation in the milliseconds.
const std::map<std::string, std::string>& small_sizes() {
  static const std::map<std::string, std::string> sizes = {
      {"saxpy", "4096"},         {"reduce", "4096"},
      {"xgemm", "16x16x16"},     {"conv2d", "16x16x3x3"},
      {"stencil2d", "20x20x2"},  {"spmv", "256x8"},
      {"batched_gemm", "32x8x8x8"},
  };
  return sizes;
}

TEST(RegistryTable, AllFamiliesRegisteredAndFindable) {
  const auto& entries = reg::all();
  ASSERT_EQ(entries.size(), 7u);
  const std::vector<std::string> expected = {
      "saxpy",     "reduce", "xgemm",       "conv2d",
      "stencil2d", "spmv",   "batched_gemm"};
  EXPECT_EQ(reg::names(), expected);
  for (const auto& e : entries) {
    const reg::entry* found = reg::find(e.name);
    ASSERT_NE(found, nullptr) << e.name;
    EXPECT_EQ(found->name, e.name);
    EXPECT_FALSE(found->description.empty());
    EXPECT_FALSE(found->dim_names.empty());
    // Size descriptor round-trip: to_string . parse == identity.
    const auto reparsed = reg::input_size::parse(e.default_size.to_string());
    EXPECT_EQ(reparsed.dims, e.default_size.dims) << e.name;
  }
  EXPECT_EQ(reg::find("not_a_kernel"), nullptr);
}

TEST(RegistryTable, InputSizeParsing) {
  EXPECT_EQ(reg::input_size::parse("64").dims,
            (std::vector<std::uint64_t>{64}));
  EXPECT_EQ(reg::input_size::parse("8x16x32").dims,
            (std::vector<std::uint64_t>{8, 16, 32}));
  EXPECT_EQ(reg::input_size::parse("8X16").dims,
            (std::vector<std::uint64_t>{8, 16}));
  EXPECT_THROW((void)reg::input_size::parse(""), std::invalid_argument);
  EXPECT_THROW((void)reg::input_size::parse("8x"), std::invalid_argument);
  EXPECT_THROW((void)reg::input_size::parse("0x4"), std::invalid_argument);
  EXPECT_THROW((void)reg::input_size::parse("axb"), std::invalid_argument);
  EXPECT_THROW((void)reg::input_size::parse("4xx8"), std::invalid_argument);
}

TEST(RegistryTable, MakeTechniqueKnowsTheCliNames) {
  for (const auto* name :
       {"exhaustive", "annealing", "opentuner", "surrogate", "random"}) {
    EXPECT_NE(reg::make_technique(name, 1), nullptr) << name;
  }
  EXPECT_THROW((void)reg::make_technique("bogus", 1), std::invalid_argument);
}

TEST(RegistrySpaces, EveryFamilyBuildsItsSpaceAndCost) {
  const auto dev = ocls::find_device("NVIDIA", "K20m");
  for (const auto& e : reg::all()) {
    const auto size = reg::input_size::parse(small_sizes().at(e.name));
    auto groups = e.make_groups(size, dev.profile());
    ASSERT_FALSE(groups.empty()) << e.name;
    const auto space = atf::search_space::generate(std::move(groups));
    ASSERT_GT(space.size(), 0u) << e.name;
    // One configuration carries exactly the family's advertised knobs.
    EXPECT_EQ(space.config_at(0).size(), e.knob_count) << e.name;
    // The cost function evaluates the first configuration to a finite time
    // (or reports it as a failed evaluation, never anything else).
    auto cost = e.make_cost(size, dev);
    try {
      const double ns = cost(space.config_at(0));
      EXPECT_GT(ns, 0.0) << e.name;
    } catch (const atf::evaluation_error&) {
      // An invalid-at-launch first config is a legitimate outcome.
    }
    // Wrong dimensionality is rejected up front.
    reg::input_size wrong;
    wrong.dims.assign(size.dims.size() + 1, 4);
    EXPECT_THROW((void)e.make_groups(wrong, dev.profile()),
                 std::invalid_argument)
        << e.name;
  }
}

TEST(RegistryTune, ExhaustiveSweepCoversTheWholeSpace) {
  const auto dev = ocls::find_device("", "Iris");
  const reg::entry* e = reg::find("spmv");
  ASSERT_NE(e, nullptr);
  reg::tune_settings settings;  // exhaustive, evaluations = 0 -> full sweep
  const auto outcome =
      reg::tune(*e, reg::input_size::parse("256x8"), dev, settings);
  EXPECT_EQ(outcome.space_size, 384u);  // pinned: Iris 6100 SpMV space
  EXPECT_EQ(outcome.evaluations, outcome.space_size);
  EXPECT_FALSE(outcome.best.empty());
  EXPECT_GT(outcome.best_ns, 0.0);
}

TEST(RegistryTune, FixedSeedRunsAreDeterministic) {
  const auto dev = ocls::find_device("NVIDIA", "K20m");
  const reg::entry* e = reg::find("stencil2d");
  ASSERT_NE(e, nullptr);
  const auto size = reg::input_size::parse("20x20x2");
  reg::tune_settings settings;
  settings.technique = "annealing";
  settings.evaluations = 60;
  settings.seed = 42;
  const auto first = reg::tune(*e, size, dev, settings);
  const auto second = reg::tune(*e, size, dev, settings);
  EXPECT_EQ(first.best, second.best);
  EXPECT_EQ(first.best_ns, second.best_ns);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.failed_evaluations, second.failed_evaluations);
}

// The suite's acceptance property: each new family tunes end to end on two
// structurally different profiles and the tuned best reproduces the scalar
// reference functionally.
TEST(RegistryTune, NewFamiliesTuneOnTwoProfilesAndPassReference) {
  for (const auto* device_name : {"K20m", "Vega"}) {
    const auto dev = ocls::find_device("", device_name);
    for (const auto* family : {"stencil2d", "spmv", "batched_gemm"}) {
      const reg::entry* e = reg::find(family);
      ASSERT_NE(e, nullptr) << family;
      const auto size = reg::input_size::parse(small_sizes().at(family));
      reg::tune_settings settings;
      settings.technique = "annealing";
      settings.evaluations = 80;
      settings.seed = 7;
      const auto outcome = reg::tune(*e, size, dev, settings);
      ASSERT_FALSE(outcome.best.empty())
          << family << " on " << device_name;
      EXPECT_TRUE(e->reference_check(size, dev, outcome.best))
          << family << " on " << device_name << ": "
          << outcome.best.to_string();
    }
  }
}

}  // namespace
