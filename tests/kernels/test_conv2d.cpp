// Tests for the direct-convolution workload: space vs validity oracle,
// functional correctness against a scalar reference, local-memory guard,
// and model sanity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "atf/kernels/conv2d.hpp"
#include "atf/search_space.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace cv = atf::kernels::conv2d;

std::vector<float> reference_conv(const cv::problem& prob,
                                  const std::vector<float>& in,
                                  const std::vector<float>& flt) {
  std::vector<float> out(prob.out_height() * prob.out_width(), 0.0f);
  for (std::size_t y = 0; y < prob.out_height(); ++y) {
    for (std::size_t x = 0; x < prob.out_width(); ++x) {
      float acc = 0.0f;
      for (std::size_t r = 0; r < prob.filter_height; ++r) {
        for (std::size_t s = 0; s < prob.filter_width; ++s) {
          acc += in[(y + r) * prob.width + (x + s)] *
                 flt[r * prob.filter_width + s];
        }
      }
      out[y * prob.out_width() + x] = acc;
    }
  }
  return out;
}

TEST(Conv2dProblem, OutputShape) {
  const cv::problem prob{32, 48, 5, 3};
  EXPECT_EQ(prob.out_height(), 28u);
  EXPECT_EQ(prob.out_width(), 46u);
}

TEST(Conv2dSpace, EveryGeneratedConfigIsValid) {
  const cv::problem prob{16, 20, 3, 3};
  auto setup = cv::make_tuning_parameters(prob, 64, 2048);
  const auto space = atf::search_space::generate(setup.groups());
  ASSERT_GT(space.size(), 0u);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto config = space.config_at(i);
    cv::params p;
    p.tbx = config["TBX"];
    p.tby = config["TBY"];
    p.lx = config["LX"];
    p.ly = config["LY"];
    p.vecx = config["VECX"];
    p.unroll = config["UNROLL"];
    p.use_lmem = config["USE_LMEM"];
    EXPECT_TRUE(cv::valid(prob, p, 64, 2048));
  }
}

TEST(Conv2dSpace, CountMatchesBruteForceOracle) {
  const cv::problem prob{10, 12, 3, 3};
  const std::size_t max_wg = 32;
  const std::size_t lmem = 1024;
  auto setup = cv::make_tuning_parameters(prob, max_wg, lmem);
  const auto space = atf::search_space::generate(setup.groups());

  std::uint64_t oracle = 0;
  const std::uint64_t vws[] = {1, 2, 4, 8};
  for (std::uint64_t tbx = 1; tbx <= prob.out_width(); ++tbx)
    for (std::uint64_t lx = 1; lx <= prob.out_width(); ++lx)
      for (const auto vecx : vws)
        for (std::uint64_t tby = 1; tby <= prob.out_height(); ++tby)
          for (std::uint64_t ly = 1; ly <= prob.out_height(); ++ly)
            for (std::uint64_t unroll = 1; unroll <= prob.filter_height;
                 ++unroll)
              for (int lm = 0; lm <= 1; ++lm) {
                const cv::params p{tbx, tby, lx, ly, vecx, unroll, lm != 0};
                oracle += cv::valid(prob, p, max_wg, lmem) ? 1 : 0;
              }
  EXPECT_EQ(space.size(), oracle);
}

class Conv2dFunctionalTest
    : public ::testing::TestWithParam<cv::params> {};

TEST_P(Conv2dFunctionalTest, MatchesReference) {
  const cv::problem prob{14, 18, 3, 5};
  std::vector<float> in(prob.height * prob.width);
  std::vector<float> flt(prob.filter_height * prob.filter_width);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>((i * 3) % 7) - 3.0f;
  }
  for (std::size_t i = 0; i < flt.size(); ++i) {
    flt[i] = static_cast<float>(i % 4) * 0.5f - 0.75f;
  }
  const auto expected = reference_conv(prob, in, flt);

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto in_buf = std::make_shared<ocls::buffer<float>>(in);
  auto flt_buf = std::make_shared<ocls::buffer<float>>(flt);
  auto out_buf = std::make_shared<ocls::buffer<float>>(expected.size());
  ocls::kernel_args args{ocls::arg(static_cast<double>(prob.height)),
                         ocls::arg(static_cast<double>(prob.width)),
                         ocls::arg(static_cast<double>(prob.filter_height)),
                         ocls::arg(static_cast<double>(prob.filter_width)),
                         ocls::arg(in_buf), ocls::arg(flt_buf),
                         ocls::arg(out_buf)};
  const auto p = GetParam();
  (void)queue.launch(cv::make_kernel(), cv::launch_range(prob, p), args,
                     cv::make_defines(prob, p));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ((*out_buf)[i], expected[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Conv2dFunctionalTest,
    ::testing::Values(cv::params{4, 4, 4, 4, 1, 1, true},
                      cv::params{8, 6, 2, 3, 1, 3, false},
                      cv::params{16, 12, 4, 4, 2, 1, true},
                      cv::params{1, 1, 1, 1, 1, 1, false}));

TEST(Conv2dModel, LocalMemoryGuardAtLaunch) {
  const cv::problem prob{256, 256, 9, 9};
  cv::params p;
  p.tbx = 128;
  p.tby = 128;  // staged tile (136)^2 * 4 ~ 74 KB > 48 KB
  p.lx = p.ly = 8;
  p.use_lmem = true;
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  EXPECT_THROW((void)queue.launch(cv::make_kernel(), cv::launch_range(prob, p),
                                  {}, cv::make_defines(prob, p)),
               ocls::out_of_resources);
  p.use_lmem = false;  // without staging the same tile is fine
  EXPECT_NO_THROW((void)queue.launch(cv::make_kernel(),
                                     cv::launch_range(prob, p), {},
                                     cv::make_defines(prob, p)));
}

TEST(Conv2dModel, LmemStagingBeatsGlobalRereadsOnGpu) {
  const cv::problem prob{128, 128, 7, 7};
  cv::params staged;
  staged.tbx = staged.tby = 16;
  staged.lx = staged.ly = 8;
  staged.use_lmem = true;
  cv::params unstaged = staged;
  unstaged.use_lmem = false;

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  const double t_staged =
      queue.launch(cv::make_kernel(), cv::launch_range(prob, staged), {},
                   cv::make_defines(prob, staged))
          .profile_ns();
  const double t_unstaged =
      queue.launch(cv::make_kernel(), cv::launch_range(prob, unstaged), {},
                   cv::make_defines(prob, unstaged))
          .profile_ns();
  EXPECT_LE(t_staged, t_unstaged);
}

}  // namespace
