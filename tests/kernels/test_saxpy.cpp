// Tests for the saxpy workload: tuning-parameter construction, launch
// geometry, functional correctness against the scalar reference, and
// performance-model sanity properties.
#include <gtest/gtest.h>

#include <memory>

#include "atf/kernels/reference.hpp"
#include "atf/kernels/saxpy.hpp"
#include "atf/search_space.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace sx = atf::kernels::saxpy;

TEST(SaxpyParams, ConstraintsMatchThePaper) {
  const std::size_t n = 24;
  auto setup = sx::make_tuning_parameters(n);
  const auto space = atf::search_space::generate({setup.group()});
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto config = space.config_at(i);
    const std::size_t wpt = config["WPT"];
    const std::size_t ls = config["LS"];
    EXPECT_EQ(n % wpt, 0u) << "WPT must divide N";
    EXPECT_EQ((n / wpt) % ls, 0u) << "LS must divide N/WPT";
  }
  EXPECT_GT(space.size(), 0u);
}

TEST(SaxpyParams, LaunchRange) {
  const auto range = sx::launch_range(1024, 4, 64);
  EXPECT_EQ(range.global[0], 256u);
  EXPECT_EQ(range.local[0], 64u);
  EXPECT_EQ(range.dims, 1u);
}

class SaxpyFunctionalTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SaxpyFunctionalTest, MatchesReference) {
  const auto [wpt, ls] = GetParam();
  const std::size_t n = 256;

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto x = std::make_shared<ocls::buffer<float>>(n);
  auto y = std::make_shared<ocls::buffer<float>>(n);
  std::vector<float> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*x)[i] = static_cast<float>(i) * 0.25f;
    (*y)[i] = static_cast<float>(n - i);
    expected[i] = (*y)[i];
  }
  const float a = 1.5f;
  atf::kernels::reference::saxpy(a, x->host(), expected);

  ocls::define_map defines;
  defines.set("WPT", static_cast<std::uint64_t>(wpt));
  ocls::kernel_args args{ocls::arg(static_cast<double>(n)), ocls::arg(a),
                         ocls::arg(x), ocls::arg(y)};
  (void)queue.launch(sx::make_kernel(), sx::launch_range(n, wpt, ls), args,
                     defines);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ((*y)[i], expected[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SaxpyFunctionalTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 256},
                      std::pair<std::size_t, std::size_t>{4, 16},
                      std::pair<std::size_t, std::size_t>{8, 32},
                      std::pair<std::size_t, std::size_t>{256, 1},
                      std::pair<std::size_t, std::size_t>{16, 4}));

// --- Performance-model sanity properties ---------------------------------

double model_time(std::size_t n, std::size_t wpt, std::size_t ls,
                  const ocls::device& dev) {
  auto ctx = std::make_shared<ocls::context>(dev);
  ocls::command_queue queue(ctx);
  ocls::define_map defines;
  defines.set("WPT", static_cast<std::uint64_t>(wpt));
  return queue.launch(sx::make_kernel(), sx::launch_range(n, wpt, ls), {},
                      defines)
      .profile_ns();
}

TEST(SaxpyModel, TimeGrowsWithInputSize) {
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  const double t1 = model_time(1 << 18, 4, 64, gpu);
  const double t2 = model_time(1 << 22, 4, 64, gpu);
  EXPECT_GT(t2, t1 * 4);  // 16x the data: clearly superlinear vs overheads
}

TEST(SaxpyModel, PartialWarpsArePenalizedOnGpu) {
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  const std::size_t n = 1 << 20;
  // LS=8 wastes 24 of 32 warp lanes; LS=32 fills the warp.
  EXPECT_GT(model_time(n, 4, 8, gpu), model_time(n, 4, 32, gpu));
}

TEST(SaxpyModel, WarpAlignmentHurtsGpuMoreThanCpu) {
  // Small local sizes cost both devices scheduling overhead (4x the
  // work-groups), but only the GPU additionally wastes SIMD lanes — so the
  // GPU's LS=8 vs LS=32 ratio must exceed the CPU's.
  const auto cpu = ocls::find_device("Intel", "Xeon");
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  const std::size_t n = 1 << 20;
  const double cpu_ratio =
      model_time(n, 4, 8, cpu) / model_time(n, 4, 32, cpu);
  const double gpu_ratio =
      model_time(n, 4, 8, gpu) / model_time(n, 4, 32, gpu);
  EXPECT_GT(gpu_ratio, 1.0);
  EXPECT_GT(cpu_ratio, 0.99);  // never faster with more groups
}

TEST(SaxpyModel, ExtremeWptUndersubscribesTheDevice) {
  const auto gpu = ocls::find_device("NVIDIA", "K20m");
  const std::size_t n = 1 << 20;
  // WPT = N/4: only 4 work-items exist; massively slower than WPT=64.
  EXPECT_GT(model_time(n, n / 4, 2, gpu), model_time(n, 64, 64, gpu));
}

TEST(SaxpyModel, TinyWptDrownsInSchedulingOnCpu) {
  const auto cpu = ocls::find_device("Intel", "Xeon");
  const std::size_t n = 1 << 20;
  // WPT=1, LS=1: 2^20 work-groups of one item each.
  EXPECT_GT(model_time(n, 1, 1, cpu), model_time(n, 256, 64, cpu));
}

TEST(SaxpyModel, UtilizationWithinBounds) {
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::define_map defines;
  defines.set("WPT", std::uint64_t{16});
  const auto estimate = sx::make_kernel().model()(
      sx::launch_range(1 << 20, 16, 64), ctx->dev().profile(), defines);
  EXPECT_GE(estimate.utilization, 0.0);
  EXPECT_LE(estimate.utilization, 1.0);
}

}  // namespace
