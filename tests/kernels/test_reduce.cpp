// Tests for the reduction workload: space constraints, functional
// correctness of the per-group partial sums, tail guarding and model
// sanity.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "atf/kernels/reduce.hpp"
#include "atf/search_space.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace rd = atf::kernels::reduce;

TEST(ReduceSpace, ConstraintsHold) {
  const std::size_t n = 4096;
  auto setup = rd::make_tuning_parameters(n, 256);
  const auto space = atf::search_space::generate({setup.group()});
  ASSERT_GT(space.size(), 0u);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const auto config = space.config_at(i);
    const std::uint64_t ls = config["LS"];
    const std::uint64_t wpt = config["WPT"];
    const std::uint64_t unroll = config["UNROLL"];
    EXPECT_TRUE((ls & (ls - 1)) == 0) << "LS must be a power of two";
    EXPECT_LE(ls, 256u);
    EXPECT_LE(wpt, n / ls);
    EXPECT_EQ(wpt % unroll, 0u);
  }
}

class ReduceFunctionalTest
    : public ::testing::TestWithParam<rd::params> {};

TEST_P(ReduceFunctionalTest, PartialSumsAddUp) {
  const std::size_t n = 1000;  // deliberately not a power of two (tail)
  const auto p = GetParam();

  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto in = std::make_shared<ocls::buffer<float>>(n);
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    (*in)[i] = static_cast<float>((i % 9)) - 4.0f;
    expected += (*in)[i];
  }
  const std::size_t groups = rd::num_groups(n, p);
  auto partials = std::make_shared<ocls::buffer<float>>(groups);

  ocls::define_map defines;
  defines.set("N", static_cast<std::uint64_t>(n));
  defines.set("LS", p.ls);
  defines.set("WPT", p.wpt);
  defines.set("UNROLL", p.unroll);
  ocls::kernel_args args{ocls::arg(static_cast<double>(n)), ocls::arg(in),
                         ocls::arg(partials)};
  (void)queue.launch(rd::make_kernel(), rd::launch_range(n, p), args,
                     defines);

  double total = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    total += (*partials)[g];
  }
  EXPECT_NEAR(total, expected, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ReduceFunctionalTest,
                         ::testing::Values(rd::params{1, 1, 1},
                                           rd::params{32, 4, 2},
                                           rd::params{128, 8, 1},
                                           rd::params{256, 1, 1},
                                           rd::params{64, 16, 8}));

TEST(ReduceModel, MoreCoverageIsFaster) {
  auto ctx =
      std::make_shared<ocls::context>(ocls::find_device("NVIDIA", "K20m"));
  ocls::command_queue queue(ctx);
  const std::size_t n = 1 << 22;
  auto time = [&](const rd::params& p) {
    ocls::define_map defines;
    defines.set("N", static_cast<std::uint64_t>(n));
    defines.set("LS", p.ls);
    defines.set("WPT", p.wpt);
    defines.set("UNROLL", p.unroll);
    return queue.launch(rd::make_kernel(), rd::launch_range(n, p), {}, defines)
        .profile_ns();
  };
  // One giant group serializes on one compute unit.
  EXPECT_GT(time({1024, n / 1024, 1}), time({256, 16, 1}));
  // Partial warps are penalized.
  EXPECT_GT(time({8, 64, 1}), time({32, 16, 1}));
}

TEST(ReduceLaunch, GroupCountCeils) {
  EXPECT_EQ(rd::num_groups(1000, {128, 4, 1}), 2u);   // ceil(1000/512)
  EXPECT_EQ(rd::num_groups(1024, {128, 4, 1}), 2u);
  EXPECT_EQ(rd::num_groups(1025, {128, 4, 1}), 3u);
  const auto range = rd::launch_range(1000, {128, 4, 1});
  EXPECT_EQ(range.global[0], 256u);
  EXPECT_EQ(range.local[0], 128u);
}

}  // namespace
