// Tests for the baseline tuners: the CLTune-like product-then-filter
// generator (its API, its empty-space behaviour, its generation budget) and
// the OpenTuner-like unconstrained-with-penalty ensemble.
#include <gtest/gtest.h>

#include "atf/kernels/xgemm_direct.hpp"
#include "baselines/cltune_like.hpp"
#include "baselines/opentuner_like.hpp"
#include "ocls/ocls.hpp"

namespace {

namespace ct = baselines::cltune;
namespace ot = baselines::opentuner;
namespace xg = atf::kernels::xgemm;

ocls::kernel constant_kernel(double ns) {
  ocls::kernel k("constant");
  k.set_perf_model([ns](const ocls::nd_range&, const ocls::device_profile&,
                        const ocls::define_map&) {
    return ocls::perf_estimate{ns, 0.5};
  });
  return k;
}

/// A kernel whose modeled time is (A-5)^2 + B read from the defines, so the
/// best configuration is known exactly.
ocls::kernel quadratic_kernel() {
  ocls::kernel k("quadratic");
  k.set_perf_model([](const ocls::nd_range&, const ocls::device_profile&,
                      const ocls::define_map& defines) {
    const double a = static_cast<double>(defines.get_uint("A"));
    const double b = static_cast<double>(defines.get_uint("B"));
    return ocls::perf_estimate{(a - 5) * (a - 5) * 100 + b * 10 + 1, 0.5};
  });
  return k;
}

TEST(CltuneLike, FullSearchFindsBestValidConfig) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(quadratic_kernel(), {64}, {1});
  tuner.AddParameter(0, "A", {1, 2, 3, 4, 5, 6, 7, 8});
  tuner.AddParameter(0, "B", {0, 1, 2, 3});
  // Constraint: A must be even.
  tuner.AddConstraint(0, [](std::vector<std::size_t> v) {
    return v[0] % 2 == 0;
  }, {"A"});
  tuner.UseFullSearch();
  tuner.Tune();
  const auto best = tuner.GetBestResult();
  EXPECT_EQ(best.at("A"), 4u);  // closest even value to 5
  EXPECT_EQ(best.at("B"), 0u);
  const auto& report = tuner.GetGenerationReport();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.candidates_enumerated, 32u);  // FULL product, then filter
  EXPECT_EQ(report.valid, 16u);
}

TEST(CltuneLike, EmptySpaceThrows) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(constant_kernel(1000), {64}, {1});
  tuner.AddParameter(0, "A", {1, 3, 5});
  tuner.AddConstraint(0, [](std::vector<std::size_t> v) {
    return v[0] % 2 == 0;
  }, {"A"});
  EXPECT_THROW(tuner.Tune(), ct::empty_space);
}

TEST(CltuneLike, GenerationBudgetAborts) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(constant_kernel(1000), {64}, {1});
  // 100^5 = 10^10 candidates: must hit the candidate budget quickly.
  std::vector<std::size_t> big(100);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = i + 1;
  }
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    tuner.AddParameter(0, name, big);
  }
  tuner.SetGenerationBudget(0.0, 100'000);
  EXPECT_THROW(tuner.Tune(), ct::generation_aborted);
}

TEST(CltuneLike, ProductSizeSaturates) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(constant_kernel(1000), {64}, {1});
  std::vector<std::size_t> big(1u << 16);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = i + 1;
  }
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    tuner.AddParameter(0, name, big);
  }
  EXPECT_EQ(tuner.ProductSize(), std::numeric_limits<std::uint64_t>::max());
}

TEST(CltuneLike, DivGlobalMulLocalGeometry) {
  // Geometry model check: base global {64}, DivGlobalSize(WPT),
  // MulLocalSize(LS) — the Listing 3 pattern. Use a perf model that
  // reports the geometry so we can assert it.
  ocls::kernel probe("probe");
  probe.set_perf_model([](const ocls::nd_range& r,
                          const ocls::device_profile&,
                          const ocls::define_map&) {
    return ocls::perf_estimate{
        static_cast<double>(r.global[0] * 1000 + r.local[0]), 0.5};
  });
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(probe, {64}, {1});
  tuner.AddParameter(0, "WPT", {4});
  tuner.AddParameter(0, "LS", {8});
  tuner.DivGlobalSize(0, {"WPT"});
  tuner.MulLocalSize(0, {"LS"});
  tuner.UseFullSearch();
  tuner.Tune();
  // global 64/4 = 16, local 8 -> modeled cost 16*1000 + 8 + launch overhead.
  const double launch =
      ocls::find_device("NVIDIA", "K20m").profile().launch_overhead_ns;
  EXPECT_DOUBLE_EQ(tuner.GetBestCost(), 16008.0 + launch);
}

TEST(CltuneLike, InvalidGeometriesGetInfiniteCost) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(constant_kernel(500), {64}, {1});
  tuner.AddParameter(0, "LS", {7, 8});  // 7 does not divide 64
  tuner.MulLocalSize(0, {"LS"});
  tuner.UseFullSearch();
  tuner.Tune();
  EXPECT_EQ(tuner.GetBestResult().at("LS"), 8u);
}

TEST(CltuneLike, AnnealingExploresFraction) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(quadratic_kernel(), {64}, {1});
  std::vector<std::size_t> values(64);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = i + 1;
  }
  tuner.AddParameter(0, "A", values);
  tuner.AddParameter(0, "B", {0, 1, 2, 3});
  tuner.UseAnnealing(0.5, 4.0);
  tuner.SetSeed(11);
  tuner.Tune();
  const auto best = tuner.GetBestResult();
  // Half the space explored: the result must at least be near-optimal.
  EXPECT_LE(best.at("A"), 8u);
}

TEST(CltuneLike, UnknownParameterInConstraintThrows) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  (void)tuner.AddKernel(constant_kernel(1), {64}, {1});
  tuner.AddParameter(0, "A", {1});
  EXPECT_THROW(tuner.AddConstraint(
                   0, [](std::vector<std::size_t>) { return true; }, {"ZZZ"}),
               std::invalid_argument);
  EXPECT_THROW(tuner.DivGlobalSize(0, {"ZZZ"}), std::invalid_argument);
}

TEST(CltuneLike, TuneWithoutKernelThrows) {
  ct::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
  EXPECT_THROW(tuner.Tune(), std::logic_error);
}

// --- OpenTuner-like baseline ----------------------------------------------

TEST(OpenTunerLike, FindsOptimumOnUnconstrainedSpace) {
  ot::tuner tuner;
  tuner.add_parameter_range("A", 64);
  tuner.add_parameter_range("B", 64);
  const auto result = tuner.run(
      2'000, 1e12,
      [](const ot::configuration& c) {
        const double a = static_cast<double>(c.at("A"));
        const double b = static_cast<double>(c.at("B"));
        return (a - 30) * (a - 30) + (b - 40) * (b - 40);
      },
      7);
  ASSERT_TRUE(result.found_valid);
  EXPECT_LT(result.best_cost, 25.0);
  EXPECT_EQ(result.evaluations, 2'000u);
}

TEST(OpenTunerLike, PenaltyDominatedSpaceFindsNothing) {
  // The paper's effect: valid configurations are a vanishing fraction, so
  // the penalty-driven search finds none.
  ot::tuner tuner;
  tuner.add_parameter_range("A", 10'000);
  tuner.add_parameter_range("B", 10'000);
  const double penalty = 1e12;
  const auto result = tuner.run(
      1'000, penalty,
      [&](const ot::configuration& c) {
        // Valid only on an exact diagonal point: density 1e-8.
        if (c.at("A") == 7777 && c.at("B") == 3333) {
          return 1.0;
        }
        return penalty;
      },
      5);
  EXPECT_FALSE(result.found_valid);
  EXPECT_EQ(result.valid_evaluations, 0u);
}

TEST(OpenTunerLike, XgemmUnconstrainedFindsNoValidConfig) {
  // End-to-end reproduction of the Section VI observation on the real
  // parameter space (IS4-sized ranges, 1,000 evaluations for test speed;
  // the bench runs the paper's 10,000).
  const xg::problem prob = xg::caffe_input_size(4);
  ot::tuner tuner;
  const auto tops = xg::unconstrained_range_sizes(prob);
  const char* names[] = {"WGD", "MDIMCD", "NDIMCD", "MDIMAD", "NDIMBD",
                         "KWID"};
  for (int i = 0; i < 6; ++i) {
    tuner.add_parameter_range(names[i], tops[i]);
  }
  tuner.add_parameter("VWMD", {1, 2, 4, 8});
  tuner.add_parameter("VWND", {1, 2, 4, 8});
  tuner.add_parameter("PADA", {0, 1});
  tuner.add_parameter("PADB", {0, 1});

  const double penalty = 1e15;
  const auto result = tuner.run(
      1'000, penalty,
      [&](const ot::configuration& c) {
        xg::params p;
        p.wgd = c.at("WGD");
        p.mdimcd = c.at("MDIMCD");
        p.ndimcd = c.at("NDIMCD");
        p.mdimad = c.at("MDIMAD");
        p.ndimbd = c.at("NDIMBD");
        p.kwid = c.at("KWID");
        p.vwmd = c.at("VWMD");
        p.vwnd = c.at("VWND");
        p.pada = c.at("PADA") != 0;
        p.padb = c.at("PADB") != 0;
        return xg::valid(prob, p, xg::size_mode::general) ? 1.0 : penalty;
      },
      13);
  EXPECT_FALSE(result.found_valid);
}

TEST(OpenTunerLike, ReproducibleForFixedSeed) {
  auto run = [] {
    ot::tuner tuner;
    tuner.add_parameter_range("A", 100);
    return tuner
        .run(200, 1e9,
             [](const ot::configuration& c) {
               return static_cast<double>(c.at("A") % 17);
             },
             3)
        .best_cost;
  };
  EXPECT_EQ(run(), run());
}

TEST(OpenTunerLike, EmptyParameterListThrows) {
  ot::tuner tuner;
  EXPECT_THROW(
      (void)tuner.run(10, 1.0,
                      [](const ot::configuration&) { return 0.0; }),
      std::logic_error);
  EXPECT_THROW(tuner.add_parameter("A", {}), std::invalid_argument);
}

TEST(OpenTunerLike, SpaceSizeSaturates) {
  ot::tuner tuner;
  for (const char* name : {"A", "B", "C", "D", "E", "F"}) {
    tuner.add_parameter_range(name, 1'000'000);
  }
  EXPECT_EQ(tuner.space_size(), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
