// End-to-end tests of the atf_tune command-line tool: spawns the real
// binary against shell-script "applications" and checks output, exit codes
// and constraint handling. The binary path is injected by CMake via
// ATF_TUNE_BINARY.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef ATF_TUNE_BINARY
#error "ATF_TUNE_BINARY must be defined by the build system"
#endif

namespace {

struct command_result {
  int exit_code;
  std::string stdout_text;
};

command_result run_command(const std::string& command) {
  const std::string with_redirect = command + " 2>/dev/null";
  FILE* pipe = popen(with_redirect.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 256> buffer{};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

class AtfTuneCliTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Per-test directory: ctest runs every test case as its own process,
    // so a fixture-shared path races under parallel ctest.
    dir_ = ::testing::TempDir() + "atf_tune_cli_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(std::system(("mkdir -p '" + dir_ + "'").c_str()), 0);
    source_ = dir_ + "/app.txt";
    compile_ = dir_ + "/compile.sh";
    run_ = dir_ + "/run.sh";
    log_ = dir_ + "/cost.log";
    cfg_ = dir_ + "/cfg.sh";
    write(source_, "placeholder\n", false);
    // compile.sh: <source> NAME=VALUE... -> shell-sourceable config.
    write(compile_,
          "#!/bin/sh\nshift\nrm -f '" + cfg_ + "'\n"
          "for kv in \"$@\"; do echo \"$kv\" >> '" + cfg_ + "'; done\n",
          true);
    // run.sh: cost = (X-12)^2 + Y, written to the log file.
    write(run_,
          "#!/bin/sh\n. '" + cfg_ + "'\n"
          "echo \"$(( (X-12)*(X-12) + Y ))\" > '" + log_ + "'\n",
          true);
  }

  void write(const std::string& path, const std::string& content,
             bool executable) {
    {
      std::ofstream out(path);
      out << content;
    }
    if (executable) {
      ASSERT_EQ(std::system(("chmod +x '" + path + "'").c_str()), 0);
    }
  }

  [[nodiscard]] std::string base_command() const {
    return std::string(ATF_TUNE_BINARY) + " --source '" + source_ +
           "' --compile '" + compile_ + "' --run '" + run_ +
           "' --log-file '" + log_ + "'";
  }

  std::string dir_, source_, compile_, run_, log_, cfg_;
};

TEST_F(AtfTuneCliTest, ExhaustiveFindsTheOptimum) {
  const auto result = run_command(
      base_command() +
      " --param 'X=interval:1:20' --param 'Y=set:0,5,10'");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("X=12"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("Y=0"), std::string::npos);
}

TEST_F(AtfTuneCliTest, ConstraintClausesAreHonored) {
  // X must be a power of two: 8 and 16 tie at (X-12)^2 = 16; exhaustive
  // search keeps the first optimum it sees, which is 8.
  const auto result = run_command(
      base_command() +
      " --param 'X=interval:1:20:pow2' --param 'Y=set:0'");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("X=8"), std::string::npos)
      << result.stdout_text;
}

TEST_F(AtfTuneCliTest, CrossParameterConstraint) {
  // Y must divide X; with X fixed to 12 the space only holds divisors.
  const auto result = run_command(
      base_command() +
      " --param 'X=set:12' --param 'Y=interval:5:12:divides=X'");
  EXPECT_EQ(result.exit_code, 0);
  // Divisors of 12 in 5..12: {6, 12}; the cost prefers Y=6.
  EXPECT_NE(result.stdout_text.find("Y=6"), std::string::npos)
      << result.stdout_text;
}

TEST_F(AtfTuneCliTest, AnnealingWithBudgetRuns) {
  const auto result = run_command(
      base_command() +
      " --param 'X=interval:1:50' --param 'Y=set:0,1'"
      " --technique annealing --evaluations 40 --seed 7");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("X="), std::string::npos);
}

TEST_F(AtfTuneCliTest, SurrogateWithBudgetRuns) {
  const auto result = run_command(
      base_command() +
      " --param 'X=interval:1:50' --param 'Y=set:0,1'"
      " --technique surrogate --evaluations 40 --seed 7");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("X="), std::string::npos);
}

TEST_F(AtfTuneCliTest, SpaceStorageBackendsFindTheSameOptimum) {
  // The storage backend must not change tuning results: exhaustive search
  // over the same space finds the same optimum under every backend.
  for (const char* backend : {"dense", "packed", "lazy"}) {
    const auto result = run_command(
        base_command() +
        " --param 'X=interval:1:20' --param 'Y=set:0,5,10'"
        " --space-storage " + backend);
    EXPECT_EQ(result.exit_code, 0) << backend;
    EXPECT_NE(result.stdout_text.find("X=12"), std::string::npos)
        << backend << ": " << result.stdout_text;
    EXPECT_NE(result.stdout_text.find("Y=0"), std::string::npos) << backend;
  }
}

TEST_F(AtfTuneCliTest, ChunkCacheMbIsAccepted) {
  const auto result = run_command(
      base_command() +
      " --param 'X=interval:1:20' --param 'Y=set:0'"
      " --space-storage lazy --chunk-cache-mb 8");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("X=12"), std::string::npos)
      << result.stdout_text;
}

TEST_F(AtfTuneCliTest, UnknownStorageBackendExitsWithCode1) {
  EXPECT_EQ(run_command(base_command() +
                        " --param 'X=interval:1:4' --space-storage sparse")
                .exit_code,
            1);
}

TEST_F(AtfTuneCliTest, EmptySpaceExitsWithCode2) {
  const auto result = run_command(
      base_command() +
      " --param 'X=set:7' --param 'Y=interval:2:3:divides=X'");
  EXPECT_EQ(result.exit_code, 2);
}

TEST_F(AtfTuneCliTest, UsageErrorsExitWithCode1) {
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY)).exit_code, 1);
  EXPECT_EQ(run_command(base_command() + " --param 'X=garbage:1'").exit_code,
            1);
  EXPECT_EQ(run_command(base_command() +
                        " --param 'X=interval:1:4' --technique warp")
                .exit_code,
            1);
  EXPECT_EQ(
      run_command(base_command() +
                  " --param 'Y=interval:1:4:divides=UNDECLARED'")
          .exit_code,
      1);
}

TEST_F(AtfTuneCliTest, GarbageNumericFlagsAreRejected) {
  // Regression: --seconds used strtod(value, nullptr), so "--seconds abc"
  // silently became 0.0 and the tune exited immediately having done
  // nothing. Every numeric flag now end-pointer-validates and names the
  // offending flag on stderr.
  const std::string params = " --param 'X=interval:1:4' --param 'Y=set:0'";
  const char* bad[] = {
      " --seconds abc",        " --seconds ''",       " --seconds -1",
      " --seconds 1.5x",       " --evaluations 12abc", " --evaluations ''",
      " --evaluations -3",     " --evaluations 1.5",  " --seed xyz",
      " --seed 0x10",          " --chunk-cache-mb -8", " --chunk-cache-mb 2q",
  };
  for (const char* flag : bad) {
    EXPECT_EQ(run_command(base_command() + params + flag).exit_code, 1)
        << flag;
  }
}

TEST_F(AtfTuneCliTest, ValidNumericFlagFormsAreAccepted) {
  const std::string params = " --param 'X=interval:10:14' --param 'Y=set:0'";
  // Fractional and scientific seconds, zero evaluations-free run.
  EXPECT_EQ(
      run_command(base_command() + params + " --seconds 30.5").exit_code, 0);
  EXPECT_EQ(
      run_command(base_command() + params + " --seconds 1e2").exit_code, 0);
  EXPECT_EQ(run_command(base_command() + params +
                        " --evaluations 100 --seed 42")
                .exit_code,
            0);
}

TEST_F(AtfTuneCliTest, BadParamBoundsNameTheValue) {
  // Interval bounds and set values go through the same strict parser.
  EXPECT_EQ(
      run_command(base_command() + " --param 'X=interval:1:4x'").exit_code,
      1);
  EXPECT_EQ(
      run_command(base_command() + " --param 'X=set:1,two,3'").exit_code, 1);
}

TEST_F(AtfTuneCliTest, ListKernelsPrintsTheRegistryTable) {
  const auto result =
      run_command(std::string(ATF_TUNE_BINARY) + " --list-kernels");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* family : {"saxpy", "reduce", "xgemm", "conv2d",
                             "stencil2d", "spmv", "batched_gemm"}) {
    EXPECT_NE(result.stdout_text.find(family), std::string::npos)
        << family << " missing from:\n" << result.stdout_text;
  }
}

TEST_F(AtfTuneCliTest, RegistryKernelTunesEndToEnd) {
  const auto result = run_command(
      std::string(ATF_TUNE_BINARY) +
      " --kernel stencil2d --size 20x20x2 --device K20m"
      " --technique annealing --evaluations 50 --seed 3");
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  // The best configuration is printed as NAME=VALUE lines.
  for (const char* knob : {"TX=", "TY=", "LX=", "LY=", "VEC="}) {
    EXPECT_NE(result.stdout_text.find(knob), std::string::npos)
        << knob << " missing from:\n" << result.stdout_text;
  }
}

TEST_F(AtfTuneCliTest, RegistryKernelIsDeterministicForAFixedSeed) {
  const std::string command =
      std::string(ATF_TUNE_BINARY) +
      " --kernel spmv --size 256x8 --device Iris"
      " --technique annealing --evaluations 40 --seed 11";
  const auto first = run_command(command);
  const auto second = run_command(command);
  EXPECT_EQ(first.exit_code, 0);
  EXPECT_EQ(first.stdout_text, second.stdout_text);
}

TEST_F(AtfTuneCliTest, UnknownKernelExitsWithCode2AndListsTheRegistry) {
  const auto result =
      run_command(std::string(ATF_TUNE_BINARY) + " --kernel conv9d");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY) +
                        " --kernel stencil2d --size 40x40")
                .exit_code,
            1);  // wrong arity for HxWxR
}

TEST_F(AtfTuneCliTest, ServeModeRequiresAQueryOrStats) {
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY) +
                        " --serve /tmp/nonexistent.sock")
                .exit_code,
            1);
  // With a query but no daemon listening: connection error, still exit 1.
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY) +
                        " --serve /tmp/nonexistent.sock --query 8x8x8")
                .exit_code,
            1);
}

TEST_F(AtfTuneCliTest, CsvLogIsWritten) {
  const std::string csv = dir_ + "/tuning.csv";
  const auto result = run_command(base_command() +
                                  " --param 'X=interval:10:14'"
                                  " --param 'Y=set:0' --csv '" + csv + "'");
  EXPECT_EQ(result.exit_code, 0);
  std::ifstream in(csv);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "evaluation,elapsed_ns,index,X,Y,cost,valid,run,source");
  int rows = 0;
  for (std::string line; std::getline(in, line);) {
    ++rows;
  }
  EXPECT_EQ(rows, 5);
}

TEST_F(AtfTuneCliTest, SizeGridModeTunesAndPersistsDatabase) {
  // GEMM grid mode needs no --source/--compile/--run: it tunes the built-in
  // kernel over the size grid and writes the tuning database.
  const std::string db = dir_ + "/tuning.tsv";
  const auto result = run_command(std::string(ATF_TUNE_BINARY) +
                                  " --size-grid '12,24x12x12' --db '" + db +
                                  "' --evaluations 60 --seed 5");
  EXPECT_EQ(result.exit_code, 0) << result.stdout_text;
  // One stdout line per grid point: SIG=-DKWID=... define string.
  EXPECT_NE(result.stdout_text.find("12x12x12="), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("24x12x12="), std::string::npos);
  EXPECT_NE(result.stdout_text.find("WGD="), std::string::npos);

  std::ifstream in(db);
  ASSERT_TRUE(in.good());
  int records = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line[0] != '#') {
      ++records;
    }
  }
  EXPECT_EQ(records, 2);
}

TEST_F(AtfTuneCliTest, SizeGridModeAccumulatesIntoExistingDatabase) {
  const std::string db = dir_ + "/tuning.tsv";
  const std::string base = std::string(ATF_TUNE_BINARY) + " --db '" + db +
                           "' --evaluations 60";
  EXPECT_EQ(run_command(base + " --size-grid '12x12x12'").exit_code, 0);
  const auto second = run_command(base + " --size-grid '24x24x12'");
  EXPECT_EQ(second.exit_code, 0);

  std::ifstream in(db);
  int records = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line[0] != '#') {
      ++records;
    }
  }
  EXPECT_EQ(records, 2);  // the first run's entry survived the second
}

TEST_F(AtfTuneCliTest, SizeGridModeRejectsBadInput) {
  const std::string db = dir_ + "/tuning.tsv";
  // Missing --db, malformed grid, unknown device, unknown technique.
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY) +
                        " --size-grid '8x8x8'")
                .exit_code,
            1);
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY) +
                        " --size-grid '8x8' --db '" + db + "'")
                .exit_code,
            1);
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY) +
                        " --size-grid '8x8x8' --db '" + db +
                        "' --device 'NoSuchAccelerator'")
                .exit_code,
            1);
  EXPECT_EQ(run_command(std::string(ATF_TUNE_BINARY) +
                        " --size-grid '8x8x8' --db '" + db +
                        "' --technique banana")
                .exit_code,
            1);
}

}  // namespace
