// tuning_db::save durability: the save must be all-or-nothing. Before the
// fix, save() opened the target path directly, so a crash mid-write left a
// truncated database — every tuned configuration gone. Now the content is
// staged in a sibling temp file and atomically renamed in; these tests
// stage real SIGKILLs (via db_save_driver, path injected through
// ATF_DB_SAVE_DRIVER) at several points of the write and assert the old
// database survives byte-identically.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include "blasmini/tuning_db.hpp"

#ifndef ATF_DB_SAVE_DRIVER
#error "ATF_DB_SAVE_DRIVER must be defined by the build system"
#endif

namespace {

class DbDurabilityTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "atf_db_durability_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/tuning.tsv";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Driver exit code; a signal-killed driver surfaces as 128+signal (the
  /// shell convention std::system's /bin/sh reports).
  int run_driver(const std::string& args) {
    const std::string command = std::string(ATF_DB_SAVE_DRIVER) + " '" +
                                path_ + "' " + args + " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

  [[nodiscard]] std::string slurp() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_, path_;
};

TEST_F(DbDurabilityTest, SaveRoundTripsThroughTheTempFile) {
  ASSERT_EQ(run_driver("5"), 0);
  const auto db = blasmini::tuning_db::load(path_);
  EXPECT_EQ(db.size(), 5u);
  ASSERT_TRUE(db.lookup("devX", "xgemm", "3x1x1").has_value());
  EXPECT_EQ(db.lookup("devX", "xgemm", "3x1x1")->at("P"), "3");
  // No stray staging file once the save completed.
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(DbDurabilityTest, KillMidSaveLeavesTheOldDatabaseByteIdentical) {
  ASSERT_EQ(run_driver("4"), 0);
  const std::string bytes_before = slurp();
  ASSERT_FALSE(bytes_before.empty());

  // A bigger save dies after 2 of 8 record lines: the target must be the
  // untouched old file, not a 2-line torso.
  ASSERT_EQ(run_driver("8 2"), 128 + SIGKILL);
  EXPECT_EQ(slurp(), bytes_before);
  EXPECT_EQ(blasmini::tuning_db::load(path_).size(), 4u);
}

TEST_F(DbDurabilityTest, KillOnTheLastRecordStillPreservesTheOldFile) {
  ASSERT_EQ(run_driver("3"), 0);
  const std::string bytes_before = slurp();

  // Dies after the final record line but before flush/fsync/rename.
  ASSERT_EQ(run_driver("6 6"), 128 + SIGKILL);
  EXPECT_EQ(slurp(), bytes_before);

  // The orphaned temp file (if the kill left one) must not confuse a
  // subsequent successful save.
  ASSERT_EQ(run_driver("6"), 0);
  EXPECT_EQ(blasmini::tuning_db::load(path_).size(), 6u);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(DbDurabilityTest, FirstSaveKilledLeavesNoTarget) {
  // No database existed yet; a killed first save must not fabricate a
  // partial one.
  ASSERT_EQ(run_driver("5 1"), 128 + SIGKILL);
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_EQ(blasmini::tuning_db::load(path_).size(), 0u);  // missing = empty
}

}  // namespace
