// Tests for the blasmini downstream layer: the tuning database (store /
// lookup / persistence round-trip) and the auto-tuned GEMM executor
// (correct results, default fallback, tuned-beats-defaults, database
// consumption).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "atf/kernels/reference.hpp"
#include "blasmini/gemm.hpp"
#include "blasmini/tuning_db.hpp"

namespace {

namespace xg = atf::kernels::xgemm;

TEST(TuningDb, StoreAndLookup) {
  blasmini::tuning_db db;
  EXPECT_FALSE(db.lookup("dev", "kern", "8x8x8").has_value());
  db.store("dev", "kern", "8x8x8", {{"WGD", "16"}, {"PADA", "true"}});
  const auto hit = db.lookup("dev", "kern", "8x8x8");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("WGD"), "16");
  EXPECT_EQ(hit->at("PADA"), "true");
  // Different key dimensions miss.
  EXPECT_FALSE(db.lookup("dev2", "kern", "8x8x8").has_value());
  EXPECT_FALSE(db.lookup("dev", "kern2", "8x8x8").has_value());
  EXPECT_FALSE(db.lookup("dev", "kern", "8x8x9").has_value());
}

TEST(TuningDb, StoreOverwrites) {
  blasmini::tuning_db db;
  db.store("d", "k", "p", {{"A", "1"}});
  db.store("d", "k", "p", {{"A", "2"}});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.lookup("d", "k", "p")->at("A"), "2");
}

TEST(TuningDb, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "blasmini_db_test.tsv";
  {
    blasmini::tuning_db db;
    db.store("Tesla K20m", "XgemmDirect", "10x500x64",
             {{"WGD", "10"}, {"KWID", "2"}, {"PADA", "false"}});
    db.store("Intel Xeon E5-2640 v2", "XgemmDirect", "20x576x25",
             {{"WGD", "8"}});
    db.save(path);
  }
  const auto db = blasmini::tuning_db::load(path);
  EXPECT_EQ(db.size(), 2u);
  const auto hit = db.lookup("Tesla K20m", "XgemmDirect", "10x500x64");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("WGD"), "10");
  EXPECT_EQ(hit->at("PADA"), "false");
  std::remove(path.c_str());
}

TEST(TuningDb, RoundTripsValuesWithSpacesTabsAndDelimiters) {
  // Regression: spaces and tabs inside free-form keys or values used to
  // corrupt the tab/space-delimited format on save/load. All delimiter
  // characters must now round-trip exactly (mirroring the CSV CRLF test).
  const std::string path = ::testing::TempDir() + "blasmini_db_escape.tsv";
  {
    blasmini::tuning_db db;
    db.store("NVIDIA Tesla K20m", "Xgemm Direct", "10 x 500",
             {{"FLAGS", "-cl-fast-relaxed-math -DTS=16"},
              {"NOTE", "tab\there"},
              {"EQ", "a=b"},
              {"SLASH", "back\\slash"},
              {"LINE", "two\nlines"}});
    db.save(path);
  }
  const auto db = blasmini::tuning_db::load(path);
  EXPECT_EQ(db.size(), 1u);
  const auto hit = db.lookup("NVIDIA Tesla K20m", "Xgemm Direct", "10 x 500");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("FLAGS"), "-cl-fast-relaxed-math -DTS=16");
  EXPECT_EQ(hit->at("NOTE"), "tab\there");
  EXPECT_EQ(hit->at("EQ"), "a=b");
  EXPECT_EQ(hit->at("SLASH"), "back\\slash");
  EXPECT_EQ(hit->at("LINE"), "two\nlines");
  std::remove(path.c_str());
}

TEST(TuningDb, LoadMissingFileIsEmpty) {
  const auto db = blasmini::tuning_db::load("/nonexistent/path/db.tsv");
  EXPECT_EQ(db.size(), 0u);
}

TEST(GemmExecutor, ComputesCorrectResultWithDefaults) {
  const std::size_t m = 13, n = 21, k = 9;
  std::vector<float> a(m * k), b(k * n), c(m * n), expected(m * n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>((i * 5) % 11) - 5.0f;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>((i * 3) % 7) - 3.0f;
  }
  atf::kernels::reference::gemm(m, n, k, a, b, expected);

  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"));
  const double ns = gemm.run(m, n, k, a, b, c);
  EXPECT_GT(ns, 0.0);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FLOAT_EQ(c[i], expected[i]) << "element " << i;
  }
}

TEST(GemmExecutor, UsesDefaultsWithoutDatabase) {
  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"));
  const auto p = gemm.params_for(32, 32, 32);
  EXPECT_EQ(p.wgd, xg::params::defaults().wgd);
  EXPECT_EQ(p.kwid, xg::params::defaults().kwid);
}

TEST(GemmExecutor, TuneStoresIntoDatabaseAndRunConsumesIt) {
  const std::size_t m = 10, n = 500, k = 64;  // the paper's IS4
  blasmini::tuning_db db;
  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"), &db);

  const auto tuned = gemm.tune(m, n, k, /*evaluations=*/4'000, /*seed=*/3);
  EXPECT_EQ(db.size(), 1u);
  const auto p = gemm.params_for(m, n, k);
  EXPECT_EQ(p.wgd, tuned.wgd);
  EXPECT_EQ(p.vwmd, tuned.vwmd);
  EXPECT_EQ(p.pada, tuned.pada);

  // Other shapes still fall back to the defaults.
  const auto other = gemm.params_for(m, n, k + 1);
  EXPECT_EQ(other.wgd, xg::params::defaults().wgd);
}

TEST(GemmExecutor, TunedDispatchIsNotSlowerThanDefaults) {
  const std::size_t m = 10, n = 500, k = 64;
  std::vector<float> a(m * k, 1.0f), b(k * n, 1.0f), c(m * n);

  blasmini::tuning_db db;
  blasmini::gemm_executor tuned(ocls::find_device("NVIDIA", "K20m"), &db);
  (void)tuned.tune(m, n, k, 4'000, 3);
  const double t_tuned = tuned.run(m, n, k, a, b, c);

  blasmini::gemm_executor defaults(ocls::find_device("NVIDIA", "K20m"));
  const double t_default = defaults.run(m, n, k, a, b, c);
  EXPECT_LE(t_tuned, t_default);
}

TEST(GemmExecutor, UnknownDeviceEntryFallsBackToDefaults) {
  // The database only knows some other device: the lookup must miss and
  // dispatch must serve the kernel defaults, never throw (Section VI-B).
  blasmini::tuning_db db;
  db.store("AMD Radeon VII", "XgemmDirect", "32x32x32",
           {{"WGD", "64"}, {"KWID", "8"}});
  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"), &db);
  const auto p = gemm.params_for(32, 32, 32);
  EXPECT_EQ(p.wgd, xg::params::defaults().wgd);
  EXPECT_EQ(p.kwid, xg::params::defaults().kwid);
}

TEST(GemmExecutor, UnknownShapeFallsBackToDefaults) {
  blasmini::tuning_db db;
  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"), &db);
  db.store(gemm.device().name(), "XgemmDirect", "32x32x32", {{"WGD", "16"}});
  EXPECT_EQ(gemm.params_for(32, 32, 33).wgd, xg::params::defaults().wgd);
  EXPECT_EQ(gemm.params_for(64, 64, 64).wgd, xg::params::defaults().wgd);
}

TEST(GemmExecutor, CorruptDatabaseLinesFallBackToDefaultsWithoutThrowing) {
  // A hand-edited or truncated database file: foreign lines are skipped on
  // load, and a record with garbage values degrades to the defaults for the
  // unparsable parameters instead of throwing at dispatch time.
  const std::string path =
      ::testing::TempDir() + "blasmini_corrupt_db.tsv";
  {
    std::ofstream out(path);
    out << "# comment survives\n";
    out << "not a record at all\n";
    out << "too\tfew\tfields\n";
    out << "NVIDIA Tesla K20m\tXgemmDirect\t12x12x12\t"
           "WGD=banana KWID= MDIMCD\n";
  }
  const auto db = blasmini::tuning_db::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(db.size(), 1u);

  blasmini::tuning_db mutable_db = db;
  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"),
                               &mutable_db);
  xg::params p;
  EXPECT_NO_THROW(p = gemm.params_for(12, 12, 12));
  // Unparsable values fall back per-parameter to the defaults.
  EXPECT_EQ(p.wgd, xg::params::defaults().wgd);
  EXPECT_EQ(p.kwid, xg::params::defaults().kwid);

  std::vector<float> a(12 * 12, 1.0f), b(12 * 12, 1.0f), c(12 * 12);
  EXPECT_NO_THROW((void)gemm.run(12, 12, 12, a, b, c));
}

TEST(GemmExecutor, NullDatabaseNeverThrowsOnRunOrParamsFor) {
  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"), nullptr);
  EXPECT_NO_THROW((void)gemm.params_for(7, 7, 7));
  std::vector<float> a(7 * 7, 1.0f), b(7 * 7, 1.0f), c(7 * 7);
  EXPECT_NO_THROW((void)gemm.run(7, 7, 7, a, b, c));
}

TEST(GemmExecutor, TuneOptionsDefaultsReproduceLegacyOverload) {
  // Regression pin: the historical tune(m, n, k, evaluations, seed) and the
  // new options overload with default technique must find the identical
  // configuration — the options struct changed the API, not the behaviour.
  const std::size_t m = 16, n = 48, k = 24;
  blasmini::tuning_db db_legacy, db_options;
  blasmini::gemm_executor legacy(ocls::find_device("NVIDIA", "K20m"),
                                 &db_legacy);
  blasmini::gemm_executor with_options(ocls::find_device("NVIDIA", "K20m"),
                                       &db_options);

  const auto p_legacy = legacy.tune(m, n, k, /*evaluations=*/800, /*seed=*/7);
  blasmini::tune_options opts;
  EXPECT_EQ(opts.technique, blasmini::tune_technique::opentuner);
  EXPECT_EQ(opts.evaluations, 20'000u);
  EXPECT_EQ(opts.seed, 1u);
  EXPECT_TRUE(opts.journal.empty());
  opts.evaluations = 800;
  opts.seed = 7;
  const auto p_options = with_options.tune(m, n, k, opts);

  EXPECT_EQ(p_legacy.to_string(), p_options.to_string());
  EXPECT_EQ(db_legacy.lookup(legacy.device().name(), "XgemmDirect",
                             "16x48x24"),
            db_options.lookup(with_options.device().name(), "XgemmDirect",
                              "16x48x24"));
}

TEST(GemmExecutor, TuneOptionsSelectsTechniqueAndCallsOnMeasure) {
  const std::size_t m = 12, n = 12, k = 12;
  blasmini::tuning_db db;
  blasmini::gemm_executor gemm(ocls::find_device("NVIDIA", "K20m"), &db);

  blasmini::tune_options opts;
  opts.technique = blasmini::tune_technique::random;
  opts.evaluations = 50;
  opts.seed = 11;
  std::size_t measured = 0;
  opts.on_measure = [&] { ++measured; };
  const auto p = gemm.tune(m, n, k, opts);
  // on_measure fires per *fresh* measurement: revisited configurations are
  // answered from the evaluation cache, so the count is <= the budget.
  EXPECT_GE(measured, 1u);
  EXPECT_LE(measured, 50u);
  EXPECT_TRUE(xg::valid({m, n, k}, p, xg::size_mode::general,
                        xg::device_limits::of(gemm.device().profile())));
  // Different techniques under the same seed explore different streams —
  // annealing is driven off the same options without recompiling callers.
  opts.technique = blasmini::tune_technique::annealing;
  measured = 0;
  EXPECT_NO_THROW((void)gemm.tune(m, n, k, opts));
  EXPECT_GE(measured, 1u);
  EXPECT_LE(measured, 50u);
}

TEST(GemmExecutor, ResultsIdenticalAcrossConfigurations) {
  // Different tuning parameters must never change the numerical result.
  const std::size_t m = 17, n = 23, k = 11;
  std::vector<float> a(m * k), b(k * n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>((i % 13)) * 0.25f - 1.0f;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>((i % 5)) - 2.0f;
  }

  blasmini::tuning_db db;
  blasmini::gemm_executor tuned(ocls::find_device("Intel", "Xeon"), &db);
  (void)tuned.tune(m, n, k, 2'000, 9);
  std::vector<float> c_tuned(m * n), c_default(m * n);
  (void)tuned.run(m, n, k, a, b, c_tuned);

  blasmini::gemm_executor defaults(ocls::find_device("Intel", "Xeon"));
  (void)defaults.run(m, n, k, a, b, c_default);
  for (std::size_t i = 0; i < c_tuned.size(); ++i) {
    ASSERT_FLOAT_EQ(c_tuned[i], c_default[i]);
  }
}

}  // namespace
