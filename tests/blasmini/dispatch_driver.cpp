// Helper binary for the dispatch kill-and-resume test: grid-tunes the
// dispatcher under per-size session journals, optionally SIGKILLing itself
// from *inside* the kernel cost function after a given number of fresh
// measurements (mid-grid, mid-size — wherever the append protocol happens
// to be), then dispatches every held-out shape and prints one fully
// deterministic line per decision. A killed run re-executed on the same
// journal directory must print bit-identical dispatch lines to a run that
// was never interrupted — that equality is the test.
//
// Usage: dispatch_driver <journal_dir> <grid_spec> <heldout_spec>
//                        <evaluations> [kill_after_measurements]
//
// stdout (the bit-compared surface):
//   known=<sig,sig,...> samples=<n>
//   <sig> from=<n> neighbor=<sig|-> distance=<%.17g> valid=<0|1>
//       t=<%.17g> t_def=<%.17g> params=<to_string>
// stderr (informational only): measured=<n>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "blasmini/dispatch.hpp"

namespace xg = atf::kernels::xgemm;

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <journal_dir> <grid_spec> <heldout_spec> "
                 "<evaluations> [kill_after]\n",
                 argv[0]);
    return 2;
  }
  const std::string journal_dir = argv[1];
  const auto grid = blasmini::size_grid::parse(argv[2]);
  const auto heldout = blasmini::size_grid::parse(argv[3]);
  const auto evaluations = std::strtoull(argv[4], nullptr, 10);
  const auto kill_after =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 0ull;

  // The database is rebuilt from the journals on every run (completed grid
  // points replay their measured prefix from the store instantly), so only
  // the journal directory needs to survive the crash.
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.journal_dir = journal_dir;
  opts.tuning.evaluations = evaluations;
  unsigned long long measured = 0;
  opts.tuning.on_measure = [&] {
    ++measured;
    if (kill_after != 0 && measured >= kill_after) {
      // Die the way a crashed machine dies: no destructors, no stdio
      // flush — only what the journals already pushed to the kernel
      // survives.
      std::raise(SIGKILL);
    }
  };

  blasmini::dispatcher dispatch(ocls::find_device("NVIDIA", "K20m"), &db,
                                opts);
  dispatch.tune_grid(grid);

  std::string known;
  for (const auto& signature : dispatch.known_sizes()) {
    known += known.empty() ? signature : "," + signature;
  }
  std::printf("known=%s samples=%zu\n", known.c_str(),
              dispatch.rerank_samples());

  const auto limits =
      xg::device_limits::of(dispatch.executor().device().profile());
  for (const xg::problem& shape : heldout.sizes) {
    const auto decision = dispatch.dispatch(shape.m, shape.n, shape.k);
    const bool valid = xg::valid(shape, decision.params,
                                 xg::size_mode::general, limits);
    const double t = dispatch.executor().modeled_time_ns(
        shape.m, shape.n, shape.k, decision.params);
    const double t_def = dispatch.executor().modeled_time_ns(
        shape.m, shape.n, shape.k, xg::params::defaults());
    std::printf("%s from=%d neighbor=%s distance=%.17g valid=%d t=%.17g "
                "t_def=%.17g params=%s\n",
                blasmini::gemm_executor::problem_signature(shape.m, shape.n,
                                                           shape.k)
                    .c_str(),
                static_cast<int>(decision.from),
                decision.neighbor.empty() ? "-" : decision.neighbor.c_str(),
                decision.distance, valid ? 1 : 0, t, t_def,
                decision.params.to_string().c_str());
  }
  std::fprintf(stderr, "measured=%llu\n", measured);
  return 0;
}
