// Helper binary for the tuning_db durability test: loads the database at
// <path> (if any), stores <records> synthetic entries, and saves back —
// SIGKILLing itself from inside the save's progress hook after
// [kill_after] record lines have reached the temp file. The parent test
// checks that a kill mid-save leaves the original database untouched: the
// bug this pins down was save() truncating the target in place, so a crash
// destroyed every previously tuned configuration.
//
// Usage: db_save_driver <path> <records> [kill_after]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "blasmini/tuning_db.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <path> <records> [kill_after]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const int records = std::atoi(argv[2]);
  const unsigned long long kill_after =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0ull;

  auto db = blasmini::tuning_db::load(path);
  for (int i = 0; i < records; ++i) {
    blasmini::record config;
    config["P"] = std::to_string(i);
    db.store("devX", "xgemm", std::to_string(i) + "x1x1", config);
  }
  db.save(path, [kill_after](std::size_t written) {
    if (kill_after != 0 && written >= kill_after) {
      std::raise(SIGKILL);  // die mid-save: no flush, no rename
    }
  });
  std::printf("saved=%zu\n", db.size());
  return 0;
}
