// Property test for the tuning-database file format: save -> load is the
// identity for *arbitrary* free-form strings in every field — keys, values,
// device/kernel/problem names stuffed with the format's own delimiters
// (tabs, newlines, spaces, '='), escape characters ('\\'), comment markers
// ('#') and empty strings. One fixed-seed generator, many rounds; any
// failure reproduces exactly.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "blasmini/tuning_db.hpp"

namespace {

/// Alphabet weighted towards the characters the format must escape.
std::string random_field(std::mt19937_64& rng, bool allow_empty = true) {
  static const std::string nasty = "\t\n\\= #";
  static const std::string plain =
      "abcXYZ019-._";
  std::uniform_int_distribution<std::size_t> len_dist(allow_empty ? 0 : 1, 12);
  std::bernoulli_distribution pick_nasty(0.4);
  std::uniform_int_distribution<std::size_t> nasty_dist(0, nasty.size() - 1);
  std::uniform_int_distribution<std::size_t> plain_dist(0, plain.size() - 1);
  std::string out;
  const std::size_t length = len_dist(rng);
  for (std::size_t i = 0; i < length; ++i) {
    out += pick_nasty(rng) ? nasty[nasty_dist(rng)] : plain[plain_dist(rng)];
  }
  return out;
}

std::string db_path(const char* name) {
  return ::testing::TempDir() + "tuning_db_property_" + name + ".tsv";
}

TEST(TuningDbProperty, SaveLoadIsIdentityOnHostileStrings) {
  std::mt19937_64 rng(0xA7F0DB);  // fixed seed: failures reproduce
  for (int round = 0; round < 40; ++round) {
    blasmini::tuning_db db;
    std::uniform_int_distribution<int> entry_count(1, 6);
    std::uniform_int_distribution<int> pair_count(0, 5);
    const int entries = entry_count(rng);
    for (int e = 0; e < entries; ++e) {
      blasmini::record config;
      const int pairs = pair_count(rng);
      for (int p = 0; p < pairs; ++p) {
        config[random_field(rng)] = random_field(rng);
      }
      db.store(random_field(rng), random_field(rng), random_field(rng),
               std::move(config));
    }

    const std::string path = db_path("hostile");
    db.save(path);
    const auto loaded = blasmini::tuning_db::load(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), db.size()) << "round " << round;
    // Compare through the public enumeration: same (device, kernel) pairs
    // are rediscovered by re-looking-up every stored key.
    // (entries_for covers problems; lookup covers exact key equality.)
    // Save is deterministic, so a second save of the loaded db must be
    // byte-identical too.
    const std::string path2 = db_path("hostile2");
    loaded.save(path2);
    db.save(path);
    std::ifstream f1(path), f2(path2);
    const std::string text1((std::istreambuf_iterator<char>(f1)),
                            std::istreambuf_iterator<char>());
    const std::string text2((std::istreambuf_iterator<char>(f2)),
                            std::istreambuf_iterator<char>());
    EXPECT_EQ(text1, text2) << "round " << round;
    std::remove(path.c_str());
    std::remove(path2.c_str());
  }
}

TEST(TuningDbProperty, EveryStoredRecordSurvivesByExactLookup) {
  std::mt19937_64 rng(0xBEEFCAFE);
  for (int round = 0; round < 40; ++round) {
    blasmini::tuning_db db;
    std::vector<std::array<std::string, 3>> keys;
    std::vector<blasmini::record> configs;
    std::uniform_int_distribution<int> entry_count(1, 5);
    std::uniform_int_distribution<int> pair_count(0, 4);
    const int entries = entry_count(rng);
    for (int e = 0; e < entries; ++e) {
      std::array<std::string, 3> key{random_field(rng), random_field(rng),
                                     random_field(rng)};
      blasmini::record config;
      const int pairs = pair_count(rng);
      for (int p = 0; p < pairs; ++p) {
        config[random_field(rng)] = random_field(rng);
      }
      db.store(key[0], key[1], key[2], config);
      // Later duplicates overwrite earlier ones — keep the latest.
      bool replaced = false;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == key) {
          configs[i] = config;
          replaced = true;
        }
      }
      if (!replaced) {
        keys.push_back(std::move(key));
        configs.push_back(std::move(config));
      }
    }

    const std::string path = db_path("lookup");
    db.save(path);
    const auto loaded = blasmini::tuning_db::load(path);
    std::remove(path.c_str());

    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto hit = loaded.lookup(keys[i][0], keys[i][1], keys[i][2]);
      ASSERT_TRUE(hit.has_value())
          << "round " << round << " entry " << i;
      EXPECT_EQ(*hit, configs[i]) << "round " << round << " entry " << i;
    }
  }
}

TEST(TuningDbProperty, CommentLeadingDeviceNameRoundTrips) {
  // '#' opens a comment line in the file format; a device named like one
  // must still survive (regression for the escaped-leading-'#' path).
  blasmini::tuning_db db;
  db.store("#gpu 0", "Xgemm", "8x8x8", {{"WGD", "8"}});
  db.store("#", "Xgemm", "1x1x1", {});
  const std::string path = db_path("comment");
  db.save(path);
  const auto loaded = blasmini::tuning_db::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_TRUE(loaded.lookup("#gpu 0", "Xgemm", "8x8x8").has_value());
  EXPECT_TRUE(loaded.lookup("#", "Xgemm", "1x1x1").has_value());
}

TEST(TuningDbProperty, EntriesForSeesEveryProblemAfterRoundTrip) {
  std::mt19937_64 rng(0x5EED5);
  blasmini::tuning_db db;
  std::set<std::string> problems;
  for (int i = 0; i < 20; ++i) {
    const std::string problem = random_field(rng, /*allow_empty=*/false);
    problems.insert(problem);
    db.store("dev\tice", "ker nel", problem, {{"P", std::to_string(i)}});
  }
  const std::string path = db_path("entries");
  db.save(path);
  const auto loaded = blasmini::tuning_db::load(path);
  std::remove(path.c_str());

  const auto entries = loaded.entries_for("dev\tice", "ker nel");
  ASSERT_EQ(entries.size(), problems.size());
  auto expected = problems.begin();
  for (const auto& [problem, config] : entries) {
    EXPECT_EQ(problem, *expected++);  // ascending problem-key order
  }
}

}  // namespace
