// Dispatch-quality suite for blasmini::dispatcher (DESIGN.md §12): pins the
// three tentpole guarantees —
//   (a) every dispatched configuration is valid under the query shape's
//       constraints,
//   (b) on a held-out size sweep the dispatched configuration beats the
//       kernel defaults on at least 90% of sizes,
//   (c) a grid tune SIGKILLed mid-run and resumed on the same journal
//       directory dispatches bit-identically to a never-interrupted run —
// plus the mechanics underneath them: size-grid parsing, the log-size
// nearest-neighbour metric, validity filtering, the refinement queue, and
// re-ranker training. Everything is fixed-seed and deterministic.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blasmini/dispatch.hpp"

#ifndef DISPATCH_DRIVER_BINARY
#error "DISPATCH_DRIVER_BINARY must be defined by the build system"
#endif

namespace {

namespace xg = atf::kernels::xgemm;

ocls::device test_device() { return ocls::find_device("NVIDIA", "K20m"); }

xg::device_limits test_limits() {
  return xg::device_limits::of(test_device().profile());
}

/// A valid non-default configuration (asserted valid where used).
xg::params wide_params() {
  xg::params p;
  p.wgd = 16;
  p.kwid = 2;
  p.vwmd = 2;
  p.vwnd = 2;
  return p;
}

/// Stores a configuration in the database under this device/signature, the
/// same way gemm_executor::tune does.
void store_params(blasmini::tuning_db& db, const std::string& signature,
                  const xg::params& p) {
  ocls::define_map defines;
  p.to_defines(defines);
  blasmini::record config;
  for (const auto& [name, value] : defines.all()) {
    config[name] = value;
  }
  db.store(test_device().name(), "XgemmDirect", signature, std::move(config));
}

struct command_result {
  int exit_code;
  std::string stdout_text;
};

command_result run_command(const std::string& command) {
  const std::string with_redirect = command + " 2>/dev/null";
  FILE* pipe = popen(with_redirect.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 256> buffer{};
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

class DispatchTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Per-test directory: ctest runs every test case as its own process,
    // so a fixture-shared path races under parallel ctest.
    dir_ = ::testing::TempDir() + "dispatch_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(std::system(("rm -rf '" + dir_ + "' && mkdir -p '" + dir_ +
                           "'")
                              .c_str()),
              0);
  }

  std::string dir_;
};

// ---------------------------------------------------------------- size_grid

TEST(SizeGrid, CrossProductIsLexicographic) {
  const auto grid = blasmini::size_grid::cross({8, 16}, {4}, {2, 6});
  ASSERT_EQ(grid.sizes.size(), 4u);
  EXPECT_EQ(grid.sizes[0].m, 8u);
  EXPECT_EQ(grid.sizes[0].k, 2u);
  EXPECT_EQ(grid.sizes[1].k, 6u);
  EXPECT_EQ(grid.sizes[2].m, 16u);
  EXPECT_EQ(grid.sizes[3].m, 16u);
  EXPECT_EQ(grid.sizes[3].k, 6u);
  EXPECT_FALSE(grid.empty());
}

TEST(SizeGrid, ParsesCrossExplicitAndCombinedForms) {
  const auto cross = blasmini::size_grid::parse("8,32x8,32x8,64");
  EXPECT_EQ(cross.sizes.size(), 8u);

  const auto explicit_shapes = blasmini::size_grid::parse("10x500x64;20x576x25");
  ASSERT_EQ(explicit_shapes.sizes.size(), 2u);
  EXPECT_EQ(explicit_shapes.sizes[0].n, 500u);
  EXPECT_EQ(explicit_shapes.sizes[1].k, 25u);

  const auto combined = blasmini::size_grid::parse("4,8x4x4;100x200x300");
  ASSERT_EQ(combined.sizes.size(), 3u);
  EXPECT_EQ(combined.sizes[2].m, 100u);
}

TEST(SizeGrid, RejectsMalformedSpecs) {
  EXPECT_THROW(blasmini::size_grid::parse(""), std::invalid_argument);
  EXPECT_THROW(blasmini::size_grid::parse("8x8"), std::invalid_argument);
  EXPECT_THROW(blasmini::size_grid::parse("8x8x8x8"), std::invalid_argument);
  EXPECT_THROW(blasmini::size_grid::parse("8x0x8"), std::invalid_argument);
  EXPECT_THROW(blasmini::size_grid::parse("8xpotatox8"),
               std::invalid_argument);
  EXPECT_THROW(blasmini::size_grid::parse("8x,x8"), std::invalid_argument);
  EXPECT_THROW(blasmini::size_grid::parse("8x-4x8"), std::invalid_argument);
  EXPECT_THROW(blasmini::size_grid::cross({8, 0}, {4}, {2}),
               std::invalid_argument);
}

// --------------------------------------------------------- dispatch basics

TEST(Dispatch, NullDatabaseServesDefaults) {
  blasmini::dispatcher dispatch(test_device(), nullptr);
  const auto decision = dispatch.dispatch(64, 64, 64);
  EXPECT_EQ(decision.from, blasmini::dispatcher::source::defaults);
  EXPECT_EQ(decision.params.to_string(), xg::params::defaults().to_string());
  EXPECT_TRUE(decision.neighbor.empty());
  EXPECT_TRUE(dispatch.known_sizes().empty());
}

TEST(Dispatch, EmptyDatabaseServesDefaultsAndEnqueues) {
  blasmini::tuning_db db;
  blasmini::dispatcher dispatch(test_device(), &db);
  const auto decision = dispatch.dispatch(48, 32, 16);
  EXPECT_EQ(decision.from, blasmini::dispatcher::source::defaults);
  ASSERT_EQ(dispatch.pending_refinements().size(), 1u);
  EXPECT_EQ(dispatch.pending_refinements()[0].m, 48u);
}

TEST(Dispatch, ExactHitServesStoredConfiguration) {
  const xg::params stored = wide_params();
  ASSERT_TRUE(xg::valid({24, 24, 24}, stored, xg::size_mode::general,
                        test_limits()));
  blasmini::tuning_db db;
  store_params(db, "24x24x24", stored);

  blasmini::dispatcher dispatch(test_device(), &db);
  const auto decision = dispatch.dispatch(24, 24, 24);
  EXPECT_EQ(decision.from, blasmini::dispatcher::source::exact);
  EXPECT_EQ(decision.params.to_string(), stored.to_string());
  EXPECT_EQ(decision.distance, 0.0);
  // Exact hits are warm — nothing to refine.
  EXPECT_TRUE(dispatch.pending_refinements().empty());
}

TEST(Dispatch, NearestNeighborUsesLogSizeMetric) {
  blasmini::tuning_db db;
  store_params(db, "8x8x8", xg::params::defaults());
  store_params(db, "128x128x128", wide_params());

  blasmini::dispatch_options opts;
  opts.surrogate_rerank = false;  // isolate the metric
  blasmini::dispatcher dispatch(test_device(), &db, opts);

  // 36 is 28 away from 8 but 92 away from 128 — absolute distance would
  // pick 8x8x8. In log space ln(36/8) = 1.50 > ln(128/36) = 1.27, so the
  // log metric picks 128x128x128 (relative size is what transfers).
  const auto decision = dispatch.dispatch(36, 36, 36);
  EXPECT_EQ(decision.from, blasmini::dispatcher::source::nearest);
  EXPECT_EQ(decision.neighbor, "128x128x128");
  EXPECT_NEAR(decision.distance, std::sqrt(3.0) * std::log(128.0 / 36.0),
              1e-12);
  EXPECT_EQ(decision.params.to_string(), wide_params().to_string());
}

TEST(Dispatch, InvalidStoredConfigurationIsFilteredOut) {
  xg::params broken = xg::params::defaults();
  broken.kwid = 3;  // 3 does not divide WGD=8 — constraint 1
  ASSERT_FALSE(xg::valid({30, 30, 30}, broken, xg::size_mode::general,
                         test_limits()));

  blasmini::tuning_db db;
  store_params(db, "32x32x32", broken);           // nearest but unusable
  store_params(db, "64x64x64", wide_params());    // farther but valid

  blasmini::dispatch_options opts;
  opts.surrogate_rerank = false;
  blasmini::dispatcher dispatch(test_device(), &db, opts);

  const auto decision = dispatch.dispatch(30, 30, 30);
  EXPECT_EQ(decision.from, blasmini::dispatcher::source::nearest);
  EXPECT_EQ(decision.neighbor, "64x64x64");

  // With every stored configuration invalid, defaults are the last resort.
  blasmini::tuning_db only_broken;
  store_params(only_broken, "32x32x32", broken);
  blasmini::dispatcher fallback(test_device(), &only_broken, opts);
  const auto last_resort = fallback.dispatch(30, 30, 30);
  EXPECT_EQ(last_resort.from, blasmini::dispatcher::source::defaults);
  EXPECT_EQ(last_resort.params.to_string(),
            xg::params::defaults().to_string());
}

TEST(Dispatch, ForeignProblemKeysAreIgnored) {
  blasmini::tuning_db db;
  store_params(db, "16x16x16", xg::params::defaults());
  store_params(db, "not-a-shape", wide_params());
  store_params(db, "8x8", wide_params());
  blasmini::dispatcher dispatch(test_device(), &db);
  EXPECT_EQ(dispatch.known_sizes(),
            std::vector<std::string>{"16x16x16"});
}

TEST(Dispatch, RefinementQueueDedupesAndBounds) {
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.max_pending = 2;
  blasmini::dispatcher dispatch(test_device(), &db, opts);

  dispatch.dispatch(10, 10, 10);
  dispatch.dispatch(10, 10, 10);  // duplicate — not enqueued twice
  EXPECT_EQ(dispatch.dropped_refinements(), 0u);
  dispatch.dispatch(20, 20, 20);
  EXPECT_EQ(dispatch.dropped_refinements(), 0u);
  dispatch.dispatch(30, 30, 30);  // beyond max_pending — dropped
  EXPECT_EQ(dispatch.dropped_refinements(), 1u);
  // Re-missing an already-queued shape while the queue is full is still a
  // repeat miss, not a second drop.
  dispatch.dispatch(10, 10, 10);
  dispatch.dispatch(20, 20, 20);
  EXPECT_EQ(dispatch.dropped_refinements(), 1u);
  // A genuinely new shape at the bound increments exactly once per miss.
  dispatch.dispatch(40, 40, 40);
  EXPECT_EQ(dispatch.dropped_refinements(), 2u);

  const auto pending = dispatch.pending_refinements();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].m, 10u);
  EXPECT_EQ(pending[1].m, 20u);
}

TEST_F(DispatchTest, RefineGraduatesColdShapeToExactHit) {
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.journal_dir = dir_;
  opts.tuning.evaluations = 40;
  blasmini::dispatcher dispatch(test_device(), &db, opts);

  EXPECT_EQ(dispatch.dispatch(16, 16, 8).from,
            blasmini::dispatcher::source::defaults);
  ASSERT_EQ(dispatch.pending_refinements().size(), 1u);

  EXPECT_EQ(dispatch.refine(4), 1u);
  EXPECT_TRUE(dispatch.pending_refinements().empty());

  const auto warm = dispatch.dispatch(16, 16, 8);
  EXPECT_EQ(warm.from, blasmini::dispatcher::source::exact);
  EXPECT_TRUE(xg::valid({16, 16, 8}, warm.params, xg::size_mode::general,
                        test_limits()));
}

TEST_F(DispatchTest, JournalPathsAreSanitizedAndPerSize) {
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.journal_dir = dir_;
  blasmini::dispatcher dispatch(test_device(), &db, opts);

  const auto path = dispatch.journal_path("16x16x16");
  EXPECT_EQ(path.find(dir_), 0u);
  EXPECT_EQ(path.find(' '), std::string::npos);
  EXPECT_NE(path.find("16x16x16.jsonl"), std::string::npos);
  EXPECT_NE(path, dispatch.journal_path("16x16x32"));

  blasmini::dispatcher unjournaled(test_device(), &db);
  EXPECT_TRUE(unjournaled.journal_path("16x16x16").empty());
}

// ------------------------------------------------------- re-ranker training

TEST_F(DispatchTest, RerankerTrainsFromJournalsOnceGateIsMet) {
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.journal_dir = dir_;
  opts.tuning.evaluations = 60;
  opts.min_rerank_samples = 32;
  blasmini::dispatcher dispatch(test_device(), &db, opts);

  dispatch.tune_grid(blasmini::size_grid::parse("12x12x12;40x40x12"));
  EXPECT_GE(dispatch.rerank_samples(), 32u);
  EXPECT_EQ(dispatch.dispatch(20, 20, 12).from,
            blasmini::dispatcher::source::reranked);
}

TEST_F(DispatchTest, RerankerStaysOffBelowSampleGateOrWithoutJournals) {
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.journal_dir = dir_;
  opts.tuning.evaluations = 60;
  opts.min_rerank_samples = 1'000'000;  // unreachable gate
  blasmini::dispatcher gated(test_device(), &db, opts);
  gated.tune_grid(blasmini::size_grid::parse("12x12x12;40x40x12"));
  EXPECT_EQ(gated.rerank_samples(), 0u);
  EXPECT_EQ(gated.dispatch(20, 20, 12).from,
            blasmini::dispatcher::source::nearest);

  // No journal directory: nothing to train on, plain nearest-neighbour.
  blasmini::dispatcher unjournaled(test_device(), &db);
  EXPECT_EQ(unjournaled.rerank_samples(), 0u);
  EXPECT_EQ(unjournaled.dispatch(20, 20, 12).from,
            blasmini::dispatcher::source::nearest);
}

TEST_F(DispatchTest, FreshInstanceOnSameStateDispatchesIdentically) {
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.journal_dir = dir_;
  opts.tuning.evaluations = 80;
  opts.min_rerank_samples = 32;

  blasmini::dispatcher first(test_device(), &db, opts);
  first.tune_grid(blasmini::size_grid::parse("12,40x12,40x12"));

  // A second dispatcher over the same database + journals (a fresh process
  // in real life) must reconstruct the identical dispatch function.
  blasmini::dispatcher second(test_device(), &db, opts);
  EXPECT_EQ(first.known_sizes(), second.known_sizes());
  EXPECT_EQ(first.rerank_samples(), second.rerank_samples());
  for (const auto& [m, n, k] :
       std::vector<std::array<std::size_t, 3>>{{20, 20, 12},
                                               {33, 14, 12},
                                               {12, 40, 12},
                                               {64, 64, 24}}) {
    const auto a = first.dispatch(m, n, k);
    const auto b = second.dispatch(m, n, k);
    EXPECT_EQ(a.params.to_string(), b.params.to_string());
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.neighbor, b.neighbor);
  }
}

// ------------------------------------------------- tentpole criteria (a)+(b)

// Criterion (a): every dispatched configuration is valid at the query
// shape. Criterion (b): dispatched modeled time beats the kernel defaults
// on >= 90% of held-out sizes. One fixed-seed grid tune (~8 s) backs both.
TEST_F(DispatchTest, HeldOutSweepIsValidAndBeatsDefaults) {
  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.journal_dir = dir_;
  opts.tuning.evaluations = 400;
  blasmini::dispatcher dispatch(test_device(), &db, opts);

  const auto grid = blasmini::size_grid::parse("96,384x96,384x96,256");
  EXPECT_EQ(dispatch.tune_grid(grid), grid.sizes.size());
  EXPECT_EQ(dispatch.known_sizes().size(), grid.sizes.size());
  EXPECT_GE(dispatch.rerank_samples(), opts.min_rerank_samples);

  const auto limits = test_limits();
  // Grid points dispatch as exact hits, valid at their own shape.
  for (const auto& shape : grid.sizes) {
    const auto decision = dispatch.dispatch(shape.m, shape.n, shape.k);
    EXPECT_EQ(decision.from, blasmini::dispatcher::source::exact);
    EXPECT_TRUE(
        xg::valid(shape, decision.params, xg::size_mode::general, limits));
  }

  const std::vector<std::array<std::size_t, 3>> heldout{
      {128, 128, 128}, {192, 256, 160}, {320, 192, 128}, {256, 320, 96},
      {160, 384, 192}, {384, 160, 128}, {288, 288, 224}, {224, 352, 160},
      {352, 224, 96},  {256, 256, 256}, {320, 320, 128}, {192, 192, 192}};
  std::size_t wins = 0;
  double log_speedup_sum = 0.0;
  for (const auto& [m, n, k] : heldout) {
    const auto decision = dispatch.dispatch(m, n, k);
    EXPECT_NE(decision.from, blasmini::dispatcher::source::exact);
    // (a) validity under the query shape's constraints, always.
    EXPECT_TRUE(xg::valid({m, n, k}, decision.params, xg::size_mode::general,
                          limits))
        << m << "x" << n << "x" << k;
    const double t = dispatch.executor().modeled_time_ns(m, n, k,
                                                         decision.params);
    const double t_def = dispatch.executor().modeled_time_ns(
        m, n, k, xg::params::defaults());
    wins += (t <= t_def) ? 1 : 0;
    log_speedup_sum += std::log(t_def / t);
  }
  // (b) >= 90% of held-out sizes beat the defaults (ceil(0.9 * 12) = 11;
  // the pinned seed currently wins 12/12 with geomean speedup ~2.3x).
  EXPECT_GE(wins, (heldout.size() * 9 + 9) / 10);
  EXPECT_GT(std::exp(log_speedup_sum / heldout.size()), 1.0);
}

// ----------------------------------------------------- tentpole criterion (c)

// Criterion (c): grid-tune -> SIGKILL mid-grid -> resume -> dispatch is
// bit-identical to a never-interrupted run. The driver prints %.17g-rendered
// decisions; the two stdouts must match byte for byte.
TEST_F(DispatchTest, KillAndResumeDispatchesBitIdentically) {
  const std::string grid = "'12,40x12,40x12'";
  const std::string heldout = "'20x20x20;33x14x9;64x24x12'";
  const std::string base = std::string(DISPATCH_DRIVER_BINARY);

  const std::string clean_dir = dir_ + "/clean";
  const std::string crash_dir = dir_ + "/crash";
  ASSERT_EQ(std::system(("mkdir -p '" + clean_dir + "' '" + crash_dir + "'")
                            .c_str()),
            0);

  const auto uninterrupted = run_command(base + " '" + clean_dir + "' " +
                                         grid + " " + heldout + " 120");
  ASSERT_EQ(uninterrupted.exit_code, 0);
  ASSERT_FALSE(uninterrupted.stdout_text.empty());

  // Kill from inside the cost function after 150 fresh measurements —
  // mid-way through the second grid point's tune.
  const auto crashed = run_command(base + " '" + crash_dir + "' " + grid +
                                   " " + heldout + " 120 150");
  EXPECT_NE(crashed.exit_code, 0);

  const auto resumed = run_command(base + " '" + crash_dir + "' " + grid +
                                   " " + heldout + " 120");
  ASSERT_EQ(resumed.exit_code, 0);
  EXPECT_EQ(resumed.stdout_text, uninterrupted.stdout_text);
}

// A second crash point (first grid point, before any journal is complete)
// exercises the replay-from-partial-prefix path.
TEST_F(DispatchTest, KillDuringFirstGridPointResumesBitIdentically) {
  const std::string grid = "'12,40x12,40x12'";
  const std::string heldout = "'20x20x20'";
  const std::string base = std::string(DISPATCH_DRIVER_BINARY);

  const std::string clean_dir = dir_ + "/clean";
  const std::string crash_dir = dir_ + "/crash";
  ASSERT_EQ(std::system(("mkdir -p '" + clean_dir + "' '" + crash_dir + "'")
                            .c_str()),
            0);

  const auto uninterrupted = run_command(base + " '" + clean_dir + "' " +
                                         grid + " " + heldout + " 120");
  ASSERT_EQ(uninterrupted.exit_code, 0);

  const auto crashed = run_command(base + " '" + crash_dir + "' " + grid +
                                   " " + heldout + " 120 30");
  EXPECT_NE(crashed.exit_code, 0);

  // Crash again at a later point — stacked crashes must still converge.
  const auto crashed_again = run_command(base + " '" + crash_dir + "' " +
                                         grid + " " + heldout + " 120 200");
  EXPECT_NE(crashed_again.exit_code, 0);

  const auto resumed = run_command(base + " '" + crash_dir + "' " + grid +
                                   " " + heldout + " 120");
  ASSERT_EQ(resumed.exit_code, 0);
  EXPECT_EQ(resumed.stdout_text, uninterrupted.stdout_text);
}

}  // namespace
