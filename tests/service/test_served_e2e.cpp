// End-to-end tests of the atf_served daemon as a real process: concurrent
// clients over the Unix socket, the SIGTERM drain, and the tentpole
// guarantee — kill, restart, re-query, and the reply bytes are identical.
// Binary paths are injected by CMake via ATF_SERVED_BINARY.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "atf/service/client.hpp"

#ifndef ATF_SERVED_BINARY
#error "ATF_SERVED_BINARY must be defined by the build system"
#endif

namespace {

using atf::service::service_client;
using atf::service::service_key;

service_key xgemm_key(const std::string& size) {
  service_key key;
  key.kernel = "xgemm";
  key.device = "K20m";
  key.size = size;
  return key;
}

class ServedE2eTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "atf_served_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    // Unix socket paths are tight (~107 bytes); keep the socket short.
    socket_ = dir_ + "/s";
    journals_ = dir_ + "/journals";
  }

  void TearDown() override {
    if (daemon_pid_ > 0) {
      kill(daemon_pid_, SIGKILL);
      waitpid(daemon_pid_, nullptr, 0);
    }
    std::filesystem::remove_all(dir_);
  }

  /// Launches the daemon and waits until it answers a ping.
  void start_daemon(const std::vector<std::string>& extra_args = {}) {
    std::vector<std::string> args = {ATF_SERVED_BINARY,
                                     "--socket",      socket_,
                                     "--journal-dir", journals_,
                                     "--technique",   "random",
                                     "--refine-step", "30"};
    args.insert(args.end(), extra_args.begin(), extra_args.end());

    daemon_pid_ = fork();
    ASSERT_GE(daemon_pid_, 0);
    if (daemon_pid_ == 0) {
      std::vector<char*> argv;
      for (auto& arg : args) {
        argv.push_back(arg.data());
      }
      argv.push_back(nullptr);
      // Quiet the child's stderr so test output stays readable.
      std::freopen((dir_ + "/daemon.log").c_str(), "a", stderr);
      execv(ATF_SERVED_BINARY, argv.data());
      _exit(127);
    }
    for (int i = 0; i < 300; ++i) {
      try {
        service_client client(socket_);
        if (client.ping()) {
          return;
        }
      } catch (const atf::service::service_error&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "daemon never came up; log:\n" << slurp(dir_ + "/daemon.log");
  }

  /// SIGTERMs the daemon and returns its exit code.
  int stop_daemon() {
    if (daemon_pid_ <= 0) {
      return -1;
    }
    kill(daemon_pid_, SIGTERM);
    int status = 0;
    waitpid(daemon_pid_, &status, 0);
    daemon_pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
  }

  /// Queries until the daemon serves a hit (refinement runs in background).
  std::string wait_for_hit(const service_key& key, int max_seconds = 60) {
    for (int i = 0; i < max_seconds * 10; ++i) {
      service_client client(socket_);
      const auto reply = client.get(key);
      EXPECT_TRUE(reply.ok) << reply.error;
      if (reply.hit) {
        return reply.raw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ADD_FAILURE() << "no hit for " << key.to_string() << "; log:\n"
                  << slurp(dir_ + "/daemon.log");
    return {};
  }

  static std::string slurp(const std::string& path) {
    std::string text;
    if (FILE* f = std::fopen(path.c_str(), "rb")) {
      char buffer[4096];
      std::size_t n = 0;
      while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
        text.append(buffer, n);
      }
      std::fclose(f);
    }
    return text;
  }

  std::string dir_, socket_, journals_;
  pid_t daemon_pid_ = -1;
};

TEST_F(ServedE2eTest, MissThenHitThenCleanShutdown) {
  start_daemon();
  const service_key key = xgemm_key("16x16x16");
  {
    service_client client(socket_);
    const auto miss = client.get(key);
    EXPECT_TRUE(miss.ok);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.enqueued);
  }
  const std::string hit = wait_for_hit(key);
  EXPECT_NE(hit.find("\"hit\":true"), std::string::npos);
  EXPECT_EQ(stop_daemon(), 0);  // SIGTERM drains and exits cleanly
}

// Registry families are first-class service keys: a stencil2d query misses,
// gets refined through atf::kernels::registry::tune, and then hits — and
// like every key, the answer survives a restart bit-identically.
TEST_F(ServedE2eTest, RegistryKernelMissRefineHitAndRestart) {
  start_daemon();
  service_key key;
  key.kernel = "stencil2d";
  key.device = "K20m";
  key.size = "40x40x1";
  {
    service_client client(socket_);
    const auto miss = client.get(key);
    EXPECT_TRUE(miss.ok);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.enqueued) << miss.error;
  }
  const std::string hit = wait_for_hit(key);
  EXPECT_NE(hit.find("\"hit\":true"), std::string::npos);
  EXPECT_EQ(stop_daemon(), 0);

  start_daemon({"--no-refiner"});
  std::string before;
  {
    service_client client(socket_);
    const auto reply = client.get(key);
    ASSERT_TRUE(reply.hit);
    before = reply.raw;
  }
  EXPECT_EQ(stop_daemon(), 0);

  start_daemon({"--no-refiner"});
  service_client client(socket_);
  const auto after = client.get(key);
  EXPECT_TRUE(after.hit);
  EXPECT_EQ(after.raw, before);

  // A registry kernel with a wrong-arity size is rejected up front, with
  // the family's dimension names in the explanation.
  service_key bad = key;
  bad.size = "40x40";
  const auto rejected = client.get(bad);
  EXPECT_TRUE(rejected.unrefinable);
  // The validate() reason rides in the raw reply line's "reason" field.
  EXPECT_NE(rejected.raw.find("HxWxR"), std::string::npos) << rejected.raw;
}

TEST_F(ServedE2eTest, UnrefinableKeysAreReportedNotQueued) {
  start_daemon();
  service_client client(socket_);

  service_key wrong_kernel = xgemm_key("8x8x8");
  wrong_kernel.kernel = "conv9d";
  EXPECT_TRUE(client.get(wrong_kernel).unrefinable);

  service_key wrong_device = xgemm_key("8x8x8");
  wrong_device.device = "GTX9999";
  EXPECT_TRUE(client.get(wrong_device).unrefinable);

  service_key bad_size = xgemm_key("8x8xpotato");
  EXPECT_TRUE(client.get(bad_size).unrefinable);

  const auto stats = client.stats();
  EXPECT_EQ(stats.counters.at("unrefinable"), 3u);
  EXPECT_EQ(stats.counters.at("pending"), 0u);
}

TEST_F(ServedE2eTest, ConcurrentClientsAllGetAnswers) {
  start_daemon();
  const service_key key = xgemm_key("16x16x16");
  (void)wait_for_hit(key);
  // Freeze the state (see the baseline note below): with the refiner on, a
  // straggling second refinement pass could legally publish a new snapshot
  // mid-test and change the reply bytes under the clients.
  EXPECT_EQ(stop_daemon(), 0);
  start_daemon({"--no-refiner"});

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 25;
  std::vector<std::thread> clients;
  std::vector<std::string> first_reply(kClients);
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        service_client client(socket_);
        for (int q = 0; q < kQueriesEach; ++q) {
          const auto reply = client.get(key);
          if (!reply.ok || !reply.hit) {
            ++failures;
            return;
          }
          if (q == 0) {
            first_reply[c] = reply.raw;
          } else if (reply.raw != first_reply[c]) {
            ++failures;  // answers must be stable within a snapshot
            return;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Every client saw the same bytes.
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(first_reply[c], first_reply[0]);
  }
  service_client client(socket_);
  const auto stats = client.stats();
  EXPECT_GE(stats.counters.at("hits"),
            static_cast<std::uint64_t>(kClients * kQueriesEach));
}

// Note on baselines: while the refiner is on, every polled miss may
// re-enqueue the key, so a drain can legitimately append more records
// after a hit was observed. The bit-identity contract is about what the
// *journals* say, so both restart tests freeze the state first (--no-
// refiner) and compare across restarts of the frozen daemon.

TEST_F(ServedE2eTest, RestartServesBitIdenticalAnswers) {
  start_daemon();
  const service_key key = xgemm_key("16x16x16");
  ASSERT_FALSE(wait_for_hit(key).empty());
  EXPECT_EQ(stop_daemon(), 0);

  start_daemon({"--no-refiner"});
  std::string before;
  {
    service_client client(socket_);
    const auto reply = client.get(key);
    ASSERT_TRUE(reply.hit);
    before = reply.raw;
  }
  EXPECT_EQ(stop_daemon(), 0);

  // Restart over the same journals, compacting on the way up: the reply
  // must be byte-identical — the snapshot is exactly the journals.
  start_daemon({"--compact-on-start", "--no-refiner"});
  service_client client(socket_);
  const auto after = client.get(key);
  EXPECT_TRUE(after.hit);
  EXPECT_EQ(after.raw, before);
}

TEST_F(ServedE2eTest, SigkillLosesNothingDurable) {
  start_daemon();
  const service_key key = xgemm_key("16x16x16");
  ASSERT_FALSE(wait_for_hit(key).empty());
  // The hardest crash: no drain, no destructors. Whatever prefix the
  // journals hold at this instant is the state both restarts must agree on.
  kill(daemon_pid_, SIGKILL);
  waitpid(daemon_pid_, nullptr, 0);
  daemon_pid_ = -1;

  start_daemon({"--no-refiner"});
  std::string before;
  {
    service_client client(socket_);
    const auto reply = client.get(key);
    ASSERT_TRUE(reply.hit);
    before = reply.raw;
  }
  kill(daemon_pid_, SIGKILL);
  waitpid(daemon_pid_, nullptr, 0);
  daemon_pid_ = -1;

  start_daemon({"--no-refiner"});
  service_client client(socket_);
  EXPECT_EQ(client.get(key).raw, before);
}

}  // namespace
