// In-process tests of the tuning_service engine: the snapshot hot path,
// the bounded dedup miss queue, deterministic refinement publishing,
// warm-start bit-identity, journal merge and compaction — everything the
// daemon does, minus the socket.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "atf/service/service.hpp"
#include "atf/session/journal.hpp"
#include "atf/session/result_store.hpp"
#include "atf/session/tuning_record.hpp"
#include "atf/value.hpp"

namespace {

using atf::service::service_key;
using atf::service::service_options;
using atf::service::tuning_service;
using atf::session::journal_writer;
using atf::session::read_journal;
using atf::session::tuning_record;
namespace json = atf::session::json;

service_key make_key(const std::string& size) {
  service_key key;
  key.kernel = "xgemm";
  key.device = "K20m";
  key.size = size;
  return key;
}

tuning_record make_record(int x, double cost) {
  atf::configuration config;
  config.add("x", atf::to_tp_value<int>(x));
  tuning_record record = tuning_record::from_configuration(config);
  record.valid = true;
  record.scalar = cost;
  record.cost = json::value(cost);
  record.run_id = "run-1";
  record.sequence = static_cast<std::uint64_t>(x);
  record.timestamp_ms = 1000 + x;
  return record;
}

std::string get_line(const service_key& key) {
  atf::service::request r;
  r.operation = atf::service::request::op::get;
  r.key = key;
  return atf::service::serialize_request(r);
}

class ServiceTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "atf_service_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A deterministic refine backend: appends `per_pass` fixed records per
  /// call, continuing from however many the journal already holds.
  atf::service::refine_fn appending_refiner(int per_pass = 3) {
    return [per_pass](const service_key&, const std::string& journal) {
      const int existing =
          static_cast<int>(read_journal(journal).records.size());
      journal_writer writer(journal);
      for (int i = 0; i < per_pass; ++i) {
        const int x = existing + i + 1;
        writer.append(make_record(x, 100.0 - x));
      }
      return true;
    };
  }

  service_options options(std::size_t max_pending = 4) {
    service_options opts;
    opts.journal_dir = dir_;
    opts.max_pending = max_pending;
    return opts;
  }

  std::string dir_;
};

TEST_F(ServiceTest, MissEnqueuesThenRefineProducesAHit) {
  tuning_service service(options(), appending_refiner());
  service.load();

  const service_key key = make_key("8x8x8");
  const auto miss =
      atf::service::parse_get_reply(service.handle_line(get_line(key)));
  EXPECT_TRUE(miss.ok);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.enqueued);
  EXPECT_FALSE(miss.dropped);

  EXPECT_EQ(service.refine_pending(10), 1u);

  const auto hit =
      atf::service::parse_get_reply(service.handle_line(get_line(key)));
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.configs, 3u);
  // The refiner's best record is x=3 (scalar 97).
  EXPECT_EQ(hit.scalar, 97.0);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.enqueued, 1u);
  EXPECT_EQ(stats.refines, 1u);
  EXPECT_EQ(stats.keys, 1u);
}

TEST_F(ServiceTest, RepeatMissIsDedupedNotDropped) {
  tuning_service service(options(/*max_pending=*/1), appending_refiner());
  service.load();

  const service_key key = make_key("8x8x8");
  const auto first =
      atf::service::parse_get_reply(service.handle_line(get_line(key)));
  EXPECT_TRUE(first.enqueued);
  // The queue is full (bound 1), but the same key again is a repeat miss,
  // not a drop.
  const auto repeat =
      atf::service::parse_get_reply(service.handle_line(get_line(key)));
  EXPECT_FALSE(repeat.enqueued);
  EXPECT_FALSE(repeat.dropped);
  EXPECT_EQ(service.stats().dropped_refinements, 0u);
}

TEST_F(ServiceTest, DropCounterIncrementsExactlyAtTheBound) {
  tuning_service service(options(/*max_pending=*/2), appending_refiner());
  service.load();

  // Two distinct keys fill the queue; the third and fourth are drops.
  EXPECT_TRUE(atf::service::parse_get_reply(
                  service.handle_line(get_line(make_key("1x1x1"))))
                  .enqueued);
  EXPECT_TRUE(atf::service::parse_get_reply(
                  service.handle_line(get_line(make_key("2x2x2"))))
                  .enqueued);
  EXPECT_EQ(service.stats().dropped_refinements, 0u);

  const auto third = atf::service::parse_get_reply(
      service.handle_line(get_line(make_key("3x3x3"))));
  EXPECT_FALSE(third.enqueued);
  EXPECT_TRUE(third.dropped);
  EXPECT_EQ(service.stats().dropped_refinements, 1u);

  EXPECT_TRUE(atf::service::parse_get_reply(
                  service.handle_line(get_line(make_key("4x4x4"))))
                  .dropped);
  EXPECT_EQ(service.stats().dropped_refinements, 2u);

  // Draining frees the queue: the dropped key can enqueue again.
  EXPECT_EQ(service.refine_pending(10), 2u);
  EXPECT_TRUE(atf::service::parse_get_reply(
                  service.handle_line(get_line(make_key("3x3x3"))))
                  .enqueued);
  EXPECT_EQ(service.stats().dropped_refinements, 2u);
}

TEST_F(ServiceTest, ValidateGateMarksKeysUnrefinable) {
  auto validate = [](const service_key& key) -> std::string {
    return key.kernel == "xgemm" ? "" : "unknown kernel";
  };
  tuning_service service(options(), appending_refiner(), validate);
  service.load();

  service_key foreign = make_key("8x8x8");
  foreign.kernel = "conv2d";
  const auto reply = atf::service::parse_get_reply(
      service.handle_line(get_line(foreign)));
  EXPECT_FALSE(reply.hit);
  EXPECT_TRUE(reply.unrefinable);
  EXPECT_FALSE(reply.enqueued);
  EXPECT_EQ(service.stats().unrefinable, 1u);
  EXPECT_EQ(service.stats().pending, 0u);
}

TEST_F(ServiceTest, WarmStartAnswersBitIdentically) {
  const service_key key = make_key("16x16x16");
  std::string first_reply;
  {
    tuning_service service(options(), appending_refiner());
    service.load();
    (void)service.handle_line(get_line(key));
    service.refine_pending(1);
    first_reply = service.handle_line(get_line(key));
  }
  // A fresh service over the same journal directory — the daemon after a
  // kill — must serve the exact same bytes.
  tuning_service reborn(options(), appending_refiner());
  EXPECT_EQ(reborn.load(), 1u);
  EXPECT_EQ(reborn.handle_line(get_line(key)), first_reply);
}

TEST_F(ServiceTest, CompactionShrinksJournalsWithoutChangingAnswers) {
  const service_key key = make_key("16x16x16");
  tuning_service service(options(), appending_refiner());
  service.load();
  (void)service.handle_line(get_line(key));
  service.refine_pending(1);

  // Pile superseding duplicates onto the journal: same configs re-measured.
  {
    journal_writer writer(service.journal_path(key));
    for (int round = 0; round < 5; ++round) {
      for (int x = 1; x <= 3; ++x) {
        auto record = make_record(x, 100.0 - x);
        record.timestamp_ms = 2000 + round;
        writer.append(record);
      }
    }
  }
  tuning_service reloaded(options(), appending_refiner());
  reloaded.load();
  const std::string before = reloaded.handle_line(get_line(key));
  const auto size_before =
      std::filesystem::file_size(reloaded.journal_path(key));

  EXPECT_EQ(reloaded.compact_all(), 1u);

  const auto size_after =
      std::filesystem::file_size(reloaded.journal_path(key));
  EXPECT_LT(size_after, size_before);
  EXPECT_EQ(reloaded.handle_line(get_line(key)), before);
  // And a cold start over the compacted journal still agrees.
  tuning_service after(options(), appending_refiner());
  after.load();
  EXPECT_EQ(after.handle_line(get_line(key)), before);
}

TEST_F(ServiceTest, MergeJournalFoldsForeignRecordsDeterministically) {
  const service_key key = make_key("32x32x32");
  tuning_service service(options(), appending_refiner());
  service.load();
  (void)service.handle_line(get_line(key));
  service.refine_pending(1);  // journal now has x=1..3

  // A foreign daemon measured x=3 better (newer timestamp) and x=9 fresh.
  const std::string foreign = dir_ + "/foreign.jsonl";
  {
    journal_writer writer(foreign);
    auto better = make_record(3, 42.0);
    better.timestamp_ms = 9999;
    writer.append(better);
    writer.append(make_record(9, 91.0));
    writer.append(make_record(1, 99.0));  // identical to ours: ignored
  }
  const auto stats = service.merge_journal(key, foreign);
  EXPECT_EQ(stats.added, 1u);
  EXPECT_EQ(stats.superseded, 1u);
  EXPECT_EQ(stats.ignored, 1u);

  const auto reply =
      atf::service::parse_get_reply(service.handle_line(get_line(key)));
  EXPECT_TRUE(reply.hit);
  EXPECT_EQ(reply.scalar, 42.0);
  EXPECT_EQ(reply.configs, 4u);

  // Merging the same journal again is a no-op: everything is ignored.
  const auto again = service.merge_journal(key, foreign);
  EXPECT_EQ(again.added, 0u);
  EXPECT_EQ(again.superseded, 0u);
  EXPECT_EQ(again.ignored, 3u);
}

TEST_F(ServiceTest, MalformedLinesAreCountedAndAnswered) {
  tuning_service service(options(), appending_refiner());
  service.load();
  const std::string reply = service.handle_line("not json");
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(service.stats().malformed, 1u);
}

TEST_F(ServiceTest, BackgroundRefinerServesMissesEventually) {
  tuning_service service(options(), appending_refiner());
  service.load();
  service.start();
  const service_key key = make_key("64x64x64");
  (void)service.handle_line(get_line(key));
  // Poll until the background thread publishes (bounded wait).
  atf::service::get_reply reply;
  for (int i = 0; i < 200; ++i) {
    reply = atf::service::parse_get_reply(service.handle_line(get_line(key)));
    if (reply.hit) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(reply.hit);
  service.stop();
}

TEST_F(ServiceTest, FailedRefinementStillPublishesThePartialJournal) {
  // A refiner that journals one record and then throws — the paid-for
  // measurement must still become servable.
  auto refine = [](const service_key&, const std::string& journal) -> bool {
    journal_writer writer(journal);
    writer.append(make_record(1, 50.0));
    throw std::runtime_error("simulated tuner crash");
  };
  tuning_service service(options(), refine);
  service.load();
  const service_key key = make_key("8x8x8");
  (void)service.handle_line(get_line(key));
  service.refine_pending(1);
  EXPECT_EQ(service.stats().failed_refines, 1u);
  const auto reply =
      atf::service::parse_get_reply(service.handle_line(get_line(key)));
  EXPECT_TRUE(reply.hit);
  EXPECT_EQ(reply.scalar, 50.0);
}

}  // namespace
