// The atf_served wire protocol: request parsing is strict (the server
// echoes precise errors), reply parsing is tolerant, and the key <-> file
// stem encoding is a bijection — the property the daemon's warm start
// rests on, since journal file names are the only key index.
#include <gtest/gtest.h>

#include <string>

#include "atf/service/protocol.hpp"

namespace {

using atf::service::get_reply;
using atf::service::parse_get_reply;
using atf::service::parse_request;
using atf::service::parse_stats_reply;
using atf::service::request;
using atf::service::serialize_request;
using atf::service::service_key;

service_key make_key(std::string kernel, std::string device,
                     std::string size) {
  service_key key;
  key.kernel = std::move(kernel);
  key.device = std::move(device);
  key.size = std::move(size);
  return key;
}

TEST(ServiceKey, ToStringJoinsWithSlashes) {
  EXPECT_EQ(make_key("xgemm", "K20m", "64x64x64").to_string(),
            "xgemm/K20m/64x64x64");
}

TEST(ServiceKey, FileStemRoundTripsPlainKeys) {
  const service_key key = make_key("xgemm", "K20m", "64x64x64");
  const auto back = service_key::from_file_stem(key.file_stem());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, key);
}

TEST(ServiceKey, FileStemRoundTripsHostileCharacters) {
  // Slashes, spaces, plus signs, percent signs, unicode — everything must
  // survive the encode/decode round trip byte-exactly.
  const service_key key =
      make_key("conv/2d", "Tesla K20m (sim)", "64x64+Ünicode%20");
  const std::string stem = key.file_stem();
  // The stem itself must be filesystem-safe: no '/' and no '%'-free
  // reserved bytes.
  EXPECT_EQ(stem.find('/'), std::string::npos);
  EXPECT_EQ(stem.find(' '), std::string::npos);
  const auto back = service_key::from_file_stem(stem);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, key);
}

TEST(ServiceKey, DistinctKeysGetDistinctStems) {
  // '+' is the field separator; a literal '+' in a field must not collide
  // with it.
  const service_key a = make_key("a+b", "c", "d");
  const service_key b = make_key("a", "b+c", "d");
  EXPECT_NE(a.file_stem(), b.file_stem());
}

TEST(ServiceKey, ForeignStemsAreRejected) {
  EXPECT_FALSE(service_key::from_file_stem("only-two+fields").has_value());
  EXPECT_FALSE(service_key::from_file_stem("bad%zzescape+a+b").has_value());
  EXPECT_FALSE(service_key::from_file_stem("").has_value());
}

TEST(RequestParsing, GetRoundTrips) {
  request r;
  r.operation = request::op::get;
  r.key = make_key("xgemm", "K20m", "32x32x32");
  std::string error;
  const auto parsed = parse_request(serialize_request(r), error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->operation, request::op::get);
  EXPECT_EQ(parsed->key, r.key);
}

TEST(RequestParsing, StatsAndPingRoundTrip) {
  for (const auto op : {request::op::stats, request::op::ping}) {
    request r;
    r.operation = op;
    std::string error;
    const auto parsed = parse_request(serialize_request(r), error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->operation, op);
  }
}

TEST(RequestParsing, MalformedLinesAreRejectedWithAReason) {
  const char* bad[] = {
      "",
      "not json",
      "{}",
      R"({"op":"frobnicate"})",
      R"({"op":"get"})",                               // key fields missing
      R"({"op":"get","kernel":"x","device":"d"})",     // size missing
      R"({"op":"get","kernel":"","device":"d","size":"s"})",  // empty field
      R"([1,2,3])",
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(parse_request(line, error).has_value()) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(ReplyParsing, HitReplyDecodes) {
  const std::string line =
      R"({"ok":true,"op":"get","key":"xgemm/K20m/8x8x8","hit":true,)"
      R"("hash":"00000000deadbeef","scalar":12.5,)"
      R"("config":{"WGD":"8","PADA":"true"},"configs":40})";
  const get_reply reply = parse_get_reply(line);
  EXPECT_TRUE(reply.ok);
  EXPECT_TRUE(reply.hit);
  EXPECT_EQ(reply.key, "xgemm/K20m/8x8x8");
  EXPECT_EQ(reply.hash, "00000000deadbeef");
  EXPECT_EQ(reply.scalar, 12.5);
  EXPECT_EQ(reply.configs, 40u);
  ASSERT_EQ(reply.config.size(), 2u);
  EXPECT_EQ(reply.config[0].first, "WGD");
  EXPECT_EQ(reply.config[0].second, "8");
  EXPECT_EQ(reply.config[1].first, "PADA");
  EXPECT_EQ(reply.config[1].second, "true");
  EXPECT_EQ(reply.raw, line);
}

TEST(ReplyParsing, MissReplyDecodes) {
  const get_reply reply = parse_get_reply(
      R"({"ok":true,"op":"get","key":"k/d/s","hit":false,)"
      R"("enqueued":true,"dropped":false,"unrefinable":false})");
  EXPECT_TRUE(reply.ok);
  EXPECT_FALSE(reply.hit);
  EXPECT_TRUE(reply.enqueued);
  EXPECT_FALSE(reply.dropped);
  EXPECT_FALSE(reply.unrefinable);
}

TEST(ReplyParsing, ErrorAndGarbageReplies) {
  const get_reply err = parse_get_reply(R"({"ok":false,"error":"nope"})");
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, "nope");

  const get_reply garbage = parse_get_reply("ceci n'est pas du json");
  EXPECT_FALSE(garbage.ok);
  EXPECT_FALSE(garbage.error.empty());
}

TEST(ReplyParsing, StatsReplyDecodes) {
  const auto reply = parse_stats_reply(
      R"({"ok":true,"op":"stats","stats":{"requests":7,"hits":3}})");
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.counters.at("requests"), 7u);
  EXPECT_EQ(reply.counters.at("hits"), 3u);
}

}  // namespace
