// Tests for the cost-function module: the OpenCL cost function (device
// lookup by name, define injection, launch-size expressions, failure
// translation, result checking, energy pairs), the CUDA wrapper, the
// generic wrapper and the program cost function.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "atf/atf.hpp"
#include "atf/cf/generic.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/cf/program.hpp"
#include "atf/kernels/reference.hpp"
#include "atf/kernels/saxpy.hpp"

namespace {

namespace sx = atf::kernels::saxpy;

atf::configuration make_config(std::size_t wpt, std::size_t ls) {
  atf::configuration config;
  config.add("WPT", atf::to_tp_value(wpt));
  config.add("LS", atf::to_tp_value(ls));
  return config;
}

TEST(OclCostFunction, EvaluatesValidConfigurations) {
  const std::size_t n = 1 << 16;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
  auto ls = atf::tp("LS", atf::interval<std::size_t>(1, n));
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .glb_size(n / wpt)
                .lcl_size(ls);
  wpt.set_current(16);
  ls.set_current(64);
  const double cost = cf(make_config(16, 64));
  EXPECT_GT(cost, 0.0);
}

TEST(OclCostFunction, LaunchFailureBecomesEvaluationError) {
  const std::size_t n = 1 << 16;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
  auto ls = atf::tp("LS", atf::interval<std::size_t>(1, n));
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .glb_size(n / wpt)
                .lcl_size(ls);
  // LS=3 does not divide the global size -> CL_INVALID_WORK_GROUP_SIZE.
  wpt.set_current(16);
  ls.set_current(3);
  EXPECT_THROW((void)cf(make_config(16, 3)), atf::evaluation_error);
  // LS=2048 exceeds the K20m work-group limit.
  wpt.set_current(16);
  ls.set_current(2048);
  EXPECT_THROW((void)cf(make_config(16, 2048)), atf::evaluation_error);
}

TEST(OclCostFunction, MissingSizesThrow) {
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel());
  EXPECT_THROW((void)cf(make_config(1, 1)), atf::evaluation_error);
}

TEST(OclCostFunction, UnknownDeviceThrowsAtConstruction) {
  EXPECT_THROW(atf::cf::ocl("AMD", "RX9070", sx::make_kernel()),
               ocls::device_not_found);
}

TEST(OclCostFunction, RandomInputsAreDeterministicPerSeed) {
  const std::size_t n = 1 << 12;
  auto make = [&](std::uint64_t seed) {
    auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
    auto ls = atf::tp("LS", atf::interval<std::size_t>(1, n));
    auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                  .inputs(atf::cf::scalar<std::size_t>(n),
                          atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                          atf::cf::buffer<float>(n))
                  .glb_size(n / wpt)
                  .lcl_size(ls);
    cf.seed(seed);
    wpt.set_current(4);
    ls.set_current(16);
    return cf(make_config(4, 16));
  };
  EXPECT_EQ(make(1), make(1));
}

TEST(OclCostFunction, ResultCheckingAcceptsCorrectKernel) {
  const std::size_t n = 512;
  std::vector<float> x(n);
  std::vector<float> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i % 17) * 0.5f;
    y[i] = static_cast<float>(i % 5);
  }
  const float a = 2.0f;
  std::vector<float> expected = y;
  atf::kernels::reference::saxpy(a, x, expected);

  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
  auto ls = atf::tp("LS", atf::interval<std::size_t>(1, n));
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n), atf::cf::scalar(a),
                        atf::cf::buffer(x), atf::cf::buffer(y))
                .glb_size(n / wpt)
                .lcl_size(ls)
                .verify_output(3, expected);
  for (const std::size_t w : {1u, 4u, 16u}) {
    wpt.set_current(w);
    ls.set_current(8);
    EXPECT_NO_THROW((void)cf(make_config(w, 8))) << "WPT=" << w;
  }
}

TEST(OclCostFunction, ResultCheckingRejectsWrongKernel) {
  const std::size_t n = 64;
  ocls::kernel broken("broken_saxpy");
  broken.set_body([](const ocls::nd_item& item, const ocls::kernel_args& args,
                     const ocls::define_map&) {
    auto& y = args[3].buf<float>();
    y[item.global_id(0)] = -1.0f;  // wrong result
  });
  std::vector<float> expected(n, 42.0f);
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", broken)
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .glb_size(std::size_t{64})
                .lcl_size(std::size_t{8})
                .verify_output(3, expected);
  EXPECT_THROW((void)cf(make_config(1, 8)), atf::evaluation_error);
}

TEST(OclCostFunction, RuntimeEnergyPairIsLexicographic) {
  const std::size_t n = 1 << 14;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
  auto ls = atf::tp("LS", atf::interval<std::size_t>(1, n));
  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .glb_size(n / wpt)
                .lcl_size(ls);
  wpt.set_current(16);
  ls.set_current(32);
  const auto pair = cf.runtime_energy(make_config(16, 32));
  EXPECT_GT(pair.primary, 0.0);
  EXPECT_GT(pair.secondary, 0.0);
  EXPECT_LT((atf::cost_pair{1.0, 9.0}), (atf::cost_pair{2.0, 1.0}));
  EXPECT_LT((atf::cost_pair{1.0, 1.0}), (atf::cost_pair{1.0, 2.0}));
}

TEST(CudaCostFunction, GridBlockMapsToGlobalLocal) {
  const std::size_t n = 1 << 14;
  auto wpt = atf::tp("WPT", atf::interval<std::size_t>(1, n));
  auto bs = atf::tp("BS", atf::interval<std::size_t>(1, n));
  auto cf = atf::cf::cuda("Tesla K20", sx::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(n),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(n),
                        atf::cf::buffer<float>(n))
                .grid_dim(n / wpt / bs)
                .block_dim(bs);
  atf::configuration config;
  config.add("WPT", atf::to_tp_value(std::size_t{16}));
  config.add("BS", atf::to_tp_value(std::size_t{64}));
  wpt.set_current(16);
  bs.set_current(64);
  EXPECT_GT(cf(config), 0.0);
}

TEST(GenericCostFunction, TranslatesForeignExceptions) {
  auto cf = atf::cf::generic([](const atf::configuration&) -> double {
    throw std::runtime_error("user failure");
  });
  EXPECT_THROW((void)cf(atf::configuration{}), atf::evaluation_error);
}

TEST(GenericCostFunction, PassesResultsThrough) {
  auto cf = atf::cf::generic(
      [](const atf::configuration& config) { return int(config["x"]) * 2; });
  atf::configuration config;
  config.add("x", atf::to_tp_value(21));
  EXPECT_EQ(cf(config), 42);
}

class ProgramCostFunctionTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Per-test directory: ctest runs every test case as its own process,
    // so a fixture-shared path races under parallel ctest.
    dir_ = ::testing::TempDir() + "atf_program_cf_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    const std::string mk = "mkdir -p '" + dir_ + "'";
    ASSERT_EQ(std::system(mk.c_str()), 0);
    source_ = dir_ + "/app.txt";
    compile_ = dir_ + "/compile.sh";
    run_ = dir_ + "/run.sh";
    log_ = dir_ + "/cost.log";
    write(source_, "application placeholder\n", false);
  }

  void write(const std::string& path, const std::string& content,
             bool executable) {
    {
      std::ofstream out(path);
      out << content;
    }
    if (executable) {
      const std::string cmd = "chmod +x '" + path + "'";
      ASSERT_EQ(std::system(cmd.c_str()), 0);
    }
  }

  std::string dir_, source_, compile_, run_, log_;
};

TEST_F(ProgramCostFunctionTest, ReadsCostFromLogFile) {
  // compile: record X; run: cost = (X-3)^2 with a secondary objective.
  write(compile_,
        "#!/bin/sh\nshift\necho \"$1\" | sed 's/^X=//' > '" + dir_ +
            "/x.txt'\n",
        true);
  write(run_,
        "#!/bin/sh\nx=$(cat '" + dir_ + "/x.txt')\n"
        "echo \"$(( (x-3)*(x-3) )),$x\" > '" + log_ + "'\n",
        true);
  auto cf = atf::cf::program(source_, compile_, run_).log_file(log_);
  atf::configuration config;
  config.add("X", atf::to_tp_value(5));
  const auto cost = cf(config);
  ASSERT_EQ(cost.values.size(), 2u);
  EXPECT_DOUBLE_EQ(cost.values[0], 4.0);
  EXPECT_DOUBLE_EQ(cost.values[1], 5.0);
}

TEST_F(ProgramCostFunctionTest, WallClockWhenNoLogFile) {
  write(compile_, "#!/bin/sh\nexit 0\n", true);
  write(run_, "#!/bin/sh\nexit 0\n", true);
  auto cf = atf::cf::program(source_, compile_, run_);
  const auto cost = cf(atf::configuration{});
  ASSERT_EQ(cost.values.size(), 1u);
  EXPECT_GT(cost.values[0], 0.0);  // wall time in ns
}

TEST_F(ProgramCostFunctionTest, FailingScriptsBecomeEvaluationErrors) {
  write(compile_, "#!/bin/sh\nexit 1\n", true);
  write(run_, "#!/bin/sh\nexit 0\n", true);
  auto failing_compile = atf::cf::program(source_, compile_, run_);
  EXPECT_THROW((void)failing_compile(atf::configuration{}),
               atf::evaluation_error);

  write(compile_, "#!/bin/sh\nexit 0\n", true);
  write(run_, "#!/bin/sh\nexit 3\n", true);
  auto failing_run = atf::cf::program(source_, compile_, run_);
  EXPECT_THROW((void)failing_run(atf::configuration{}),
               atf::evaluation_error);
}

TEST_F(ProgramCostFunctionTest, MalformedLogBecomesEvaluationError) {
  write(compile_, "#!/bin/sh\nexit 0\n", true);
  write(run_, "#!/bin/sh\necho 'not-a-number' > '" + log_ + "'\n", true);
  auto cf = atf::cf::program(source_, compile_, run_).log_file(log_);
  EXPECT_THROW((void)cf(atf::configuration{}), atf::evaluation_error);
}

TEST(ProgramCost, LexicographicOrder) {
  using atf::cf::program_cost;
  EXPECT_LT((program_cost{{1.0, 9.0}}), (program_cost{{2.0, 0.0}}));
  EXPECT_LT((program_cost{{1.0, 1.0}}), (program_cost{{1.0, 2.0}}));
  EXPECT_EQ(atf::cost_traits<program_cost>::scalar(program_cost{{3.5, 1.0}}),
            3.5);
}

}  // namespace
