// Tests for the OpenCL simulator substrate: device enumeration by name,
// define maps, buffers/args, ND-range validation per the OpenCL spec,
// functional execution with full work-group semantics, profiling and the
// energy model.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "ocls/ocls.hpp"

namespace {

using namespace ocls;

class OclsTest : public ::testing::Test {
protected:
  void TearDown() override { reset_registered_devices(); }
};

TEST_F(OclsTest, BuiltinPlatformsArePresent) {
  bool saw_intel = false;
  bool saw_nvidia = false;
  for (const auto& p : platforms()) {
    saw_intel |= p.name() == "Intel(R) OpenCL";
    saw_nvidia |= p.name() == "NVIDIA CUDA";
  }
  EXPECT_TRUE(saw_intel);
  EXPECT_TRUE(saw_nvidia);
}

TEST_F(OclsTest, FindDeviceBySubstring) {
  const auto gpu = find_device("NVIDIA", "K20m");
  EXPECT_EQ(gpu.profile().kind, device_kind::gpu);
  EXPECT_EQ(gpu.profile().compute_units, 13u);

  const auto cpu = find_device("Intel", "Xeon");
  EXPECT_EQ(cpu.profile().kind, device_kind::cpu);
  // The paper: the dual-socket CPU appears as one device with 32 CUs.
  EXPECT_EQ(cpu.profile().compute_units, 32u);
}

TEST_F(OclsTest, FindDeviceUnknownThrows) {
  EXPECT_THROW((void)find_device("AMD", "MI300"), device_not_found);
  EXPECT_THROW((void)find_device("NVIDIA", "H100"), device_not_found);
}

TEST_F(OclsTest, RegisterCustomDevice) {
  device_profile p = tesla_k20m_profile();
  p.platform_name = "Test Platform";
  p.device_name = "Test Device 9000";
  register_device(p);
  const auto dev = find_device("Test Platform", "9000");
  EXPECT_EQ(dev.name(), "Test Device 9000");
}

TEST_F(OclsTest, PeakDerivedQuantities) {
  const auto gpu = tesla_k20m_profile();
  // 13 SMX * 384 flops/cycle * 0.706 GHz ~ 3.5 TFLOPs.
  EXPECT_NEAR(gpu.peak_flops(), 3.52e12, 0.1e12);
  EXPECT_DOUBLE_EQ(gpu.peak_bytes_per_s(), 208e9);
}

TEST_F(OclsTest, DefineMapTypedGetters) {
  define_map d;
  d.set("A", std::uint64_t{42});
  d.set("B", std::int64_t{-7});
  d.set("C", 2.5);
  d.set("D", true);
  d.set("E", std::string("false"));
  EXPECT_EQ(d.get_uint("A"), 42u);
  EXPECT_EQ(d.get_int("B"), -7);
  EXPECT_DOUBLE_EQ(d.get_double("C"), 2.5);
  EXPECT_TRUE(d.get_bool("D"));
  EXPECT_FALSE(d.get_bool("E"));
}

TEST_F(OclsTest, DefineMapErrors) {
  define_map d;
  d.set("X", std::string("not-a-number"));
  EXPECT_THROW((void)d.get_uint("MISSING"), build_error);
  EXPECT_THROW((void)d.get_uint("X"), build_error);
  EXPECT_THROW((void)d.get_bool("X"), build_error);
}

TEST_F(OclsTest, DefineMapBuildOptions) {
  define_map d;
  d.set("WPT", std::uint64_t{8});
  d.set("LS", std::uint64_t{64});
  EXPECT_EQ(d.build_options(), "-DLS=64 -DWPT=8");
}

TEST_F(OclsTest, ArgScalarAndBufferAccess) {
  arg scalar_arg(3.5);
  EXPECT_TRUE(scalar_arg.is_scalar());
  EXPECT_FLOAT_EQ(scalar_arg.scalar<float>(), 3.5f);
  EXPECT_THROW((void)scalar_arg.buf<float>(), invalid_kernel_args);

  auto buf = std::make_shared<buffer<float>>(std::size_t{16});
  arg buffer_arg(buf);
  EXPECT_FALSE(buffer_arg.is_scalar());
  EXPECT_EQ(buffer_arg.buf<float>().size(), 16u);
  EXPECT_THROW((void)buffer_arg.scalar<int>(), invalid_kernel_args);
  EXPECT_THROW((void)buffer_arg.buf<int>(), invalid_kernel_args);
}

// A counting kernel that records every (group, local) pair it sees.
kernel make_counting_kernel(std::atomic<std::size_t>& count,
                            std::set<std::string>* ids, std::mutex& mutex) {
  kernel k("counter");
  k.set_body([&count, ids, &mutex](const nd_item& item, const kernel_args&,
                                   const define_map&) {
    count.fetch_add(1, std::memory_order_relaxed);
    if (ids != nullptr) {
      std::lock_guard lock(mutex);
      ids->insert(std::to_string(item.global_id(0)) + "," +
                  std::to_string(item.global_id(1)));
    }
  });
  k.set_perf_model([](const nd_range&, const device_profile&,
                      const define_map&) { return perf_estimate{1000.0, 0.5}; });
  return k;
}

TEST_F(OclsTest, FunctionalExecutionRunsEveryWorkItemOnce) {
  auto ctx = std::make_shared<context>(find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  command_queue queue(ctx);
  std::atomic<std::size_t> count{0};
  std::mutex mutex;
  std::set<std::string> ids;
  const kernel k = make_counting_kernel(count, &ids, mutex);

  const auto range = nd_range::d2(8, 6, 4, 3);
  (void)queue.launch(k, range, {}, {});
  EXPECT_EQ(count.load(), 48u);
  EXPECT_EQ(ids.size(), 48u);  // all distinct global ids
}

TEST_F(OclsTest, FunctionalExecutionSkippedWhenDisabled) {
  auto ctx = std::make_shared<context>(find_device("NVIDIA", "K20m"));
  command_queue queue(ctx);  // functional off by default
  std::atomic<std::size_t> count{0};
  std::mutex mutex;
  const kernel k = make_counting_kernel(count, nullptr, mutex);
  (void)queue.launch(k, nd_range::d1(64, 8), {}, {});
  EXPECT_EQ(count.load(), 0u);
}

TEST_F(OclsTest, NdItemGeometry) {
  auto ctx = std::make_shared<context>(find_device("NVIDIA", "K20m"));
  ctx->execute_functionally(true);
  command_queue queue(ctx);
  kernel k("geom");
  std::atomic<bool> ok{true};
  k.set_body([&ok](const nd_item& item, const kernel_args&,
                   const define_map&) {
    if (item.global_id(0) !=
        item.group_id(0) * item.local_size(0) + item.local_id(0)) {
      ok = false;
    }
    if (item.global_size(0) != 32 || item.local_size(0) != 8 ||
        item.num_groups(0) != 4) {
      ok = false;
    }
  });
  (void)queue.launch(k, nd_range::d1(32, 8), {}, {});
  EXPECT_TRUE(ok.load());
}

TEST_F(OclsTest, LocalSizeMustDivideGlobalSize) {
  auto ctx = std::make_shared<context>(find_device("NVIDIA", "K20m"));
  command_queue queue(ctx);
  const kernel k("noop");
  // The OpenCL-spec rule at the heart of the paper's saxpy constraints.
  EXPECT_THROW((void)queue.launch(k, nd_range::d1(100, 3), {}, {}),
               invalid_work_group_size);
  EXPECT_NO_THROW((void)queue.launch(k, nd_range::d1(100, 4), {}, {}));
}

TEST_F(OclsTest, WorkGroupSizeLimitEnforced) {
  auto ctx = std::make_shared<context>(find_device("NVIDIA", "K20m"));
  command_queue queue(ctx);
  const kernel k("noop");
  // K20m: max 1024 work-items per group.
  EXPECT_THROW((void)queue.launch(k, nd_range::d1(4096, 2048), {}, {}),
               invalid_work_group_size);
  EXPECT_NO_THROW((void)queue.launch(k, nd_range::d1(4096, 1024), {}, {}));
}

TEST_F(OclsTest, ZeroSizesRejected) {
  auto ctx = std::make_shared<context>(find_device("NVIDIA", "K20m"));
  command_queue queue(ctx);
  const kernel k("noop");
  EXPECT_THROW((void)queue.launch(k, nd_range::d1(0, 1), {}, {}),
               invalid_global_work_size);
  EXPECT_THROW((void)queue.launch(k, nd_range::d1(16, 0), {}, {}),
               invalid_work_group_size);
}

TEST_F(OclsTest, LocalMemoryLimitEnforced) {
  auto ctx = std::make_shared<context>(find_device("NVIDIA", "K20m"));
  command_queue queue(ctx);
  kernel k("hungry");
  k.set_local_mem_model(
      [](const define_map&) { return std::size_t{64} * 1024; });  // > 48 KB
  EXPECT_THROW((void)queue.launch(k, nd_range::d1(16, 4), {}, {}),
               out_of_resources);
}

TEST_F(OclsTest, ProfilingReportsModeledTimePlusLaunchOverhead) {
  const auto dev = find_device("NVIDIA", "K20m");
  auto ctx = std::make_shared<context>(dev);
  command_queue queue(ctx);
  kernel k("timed");
  k.set_perf_model([](const nd_range&, const device_profile&,
                      const define_map&) { return perf_estimate{5000.0, 1.0}; });
  const event e = queue.launch(k, nd_range::d1(16, 4), {}, {});
  EXPECT_DOUBLE_EQ(e.profile_ns(),
                   5000.0 + dev.profile().launch_overhead_ns);
}

TEST_F(OclsTest, EnergyModel) {
  const auto profile = tesla_k20m_profile();
  EXPECT_DOUBLE_EQ(power_watts(profile, 0.0), profile.idle_watts);
  EXPECT_DOUBLE_EQ(power_watts(profile, 1.0), profile.max_watts);
  EXPECT_DOUBLE_EQ(power_watts(profile, 2.0), profile.max_watts);  // clamped
  // 1 ms at full power: 225 W * 1e-3 s = 0.225 J = 225000 uJ.
  EXPECT_NEAR(energy_microjoules(profile, 1e6, 1.0), 225000.0, 1e-6);
}

TEST_F(OclsTest, EventEnergyScalesWithUtilization) {
  const auto dev = find_device("NVIDIA", "K20m");
  auto ctx = std::make_shared<context>(dev);
  command_queue queue(ctx);
  kernel hot("hot");
  hot.set_perf_model([](const nd_range&, const device_profile&,
                        const define_map&) {
    return perf_estimate{10000.0, 1.0};
  });
  kernel cold("cold");
  cold.set_perf_model([](const nd_range&, const device_profile&,
                         const define_map&) {
    return perf_estimate{10000.0, 0.1};
  });
  const auto range = nd_range::d1(16, 4);
  EXPECT_GT(queue.launch(hot, range, {}, {}).energy_uj(),
            queue.launch(cold, range, {}, {}).energy_uj());
}

TEST_F(OclsTest, KernelBodyReadsDefines) {
  auto ctx = std::make_shared<context>(find_device("Intel", "Xeon"));
  ctx->execute_functionally(true);
  command_queue queue(ctx);
  kernel k("scaler");
  k.set_body([](const nd_item& item, const kernel_args& args,
                const define_map& defines) {
    auto& out = args[0].buf<float>();
    out[item.global_id(0)] =
        static_cast<float>(defines.get_uint("SCALE") * item.global_id(0));
  });
  auto out = std::make_shared<buffer<float>>(std::size_t{8});
  define_map defines;
  defines.set("SCALE", std::uint64_t{3});
  (void)queue.launch(k, nd_range::d1(8, 2), {arg(out)}, defines);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ((*out)[i], 3.0f * static_cast<float>(i));
  }
}

}  // namespace
