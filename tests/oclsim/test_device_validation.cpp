// register_device validation: physically meaningless profiles must be
// rejected at registration time with a clear ocls::invalid_device_profile
// (previously they were silently accepted and surfaced much later as
// NaN/inf model times), and the two new calibrated built-ins must be
// discoverable and pass their own validation.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "ocls/device.hpp"
#include "ocls/error.hpp"

namespace {

using namespace ocls;

class DeviceValidationTest : public ::testing::Test {
protected:
  void TearDown() override { reset_registered_devices(); }

  /// A profile that passes validation, to be broken one field at a time.
  static device_profile good() {
    device_profile p;
    p.platform_name = "Test Platform";
    p.device_name = "Test Device";
    p.compute_units = 4;
    p.simd_width = 8;
    p.max_work_group_size = 256;
    p.clock_ghz = 1.0;
    p.flops_per_cu_per_cycle = 8.0;
    p.global_bw_gbps = 10.0;
    p.cache_bw_multiplier = 2.0;
    p.idle_watts = 5.0;
    p.max_watts = 50.0;
    return p;
  }
};

TEST_F(DeviceValidationTest, AcceptsAndRegistersValidProfile) {
  EXPECT_NO_THROW(register_device(good()));
  const auto dev = find_device("Test Platform", "Test Device");
  EXPECT_EQ(dev.profile().compute_units, 4u);
}

TEST_F(DeviceValidationTest, RejectsZeroComputeUnits) {
  auto p = good();
  p.compute_units = 0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
}

TEST_F(DeviceValidationTest, RejectsZeroSimdWidth) {
  auto p = good();
  p.simd_width = 0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
}

TEST_F(DeviceValidationTest, RejectsZeroWorkGroupLimit) {
  auto p = good();
  p.max_work_group_size = 0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
}

TEST_F(DeviceValidationTest, RejectsNonPositiveFrequency) {
  auto p = good();
  p.clock_ghz = 0.0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
  p.clock_ghz = -2.0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
}

TEST_F(DeviceValidationTest, RejectsNonPositiveBandwidth) {
  auto p = good();
  p.global_bw_gbps = 0.0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
  p.global_bw_gbps = -1.0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
}

TEST_F(DeviceValidationTest, RejectsNonFiniteFields) {
  auto p = good();
  p.flops_per_cu_per_cycle = std::numeric_limits<double>::infinity();
  EXPECT_THROW(register_device(p), invalid_device_profile);
  p = good();
  p.clock_ghz = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(register_device(p), invalid_device_profile);
  p = good();
  p.launch_overhead_ns = -1.0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
}

TEST_F(DeviceValidationTest, RejectsIdleAboveMaxPower) {
  auto p = good();
  p.idle_watts = 100.0;
  p.max_watts = 50.0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
}

TEST_F(DeviceValidationTest, ErrorNamesTheOffendingField) {
  auto p = good();
  p.global_bw_gbps = 0.0;
  try {
    register_device(p);
    FAIL() << "expected invalid_device_profile";
  } catch (const invalid_device_profile& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("global_bw_gbps"), std::string::npos) << what;
    EXPECT_NE(what.find("Test Device"), std::string::npos) << what;
  }
}

TEST_F(DeviceValidationTest, RejectedProfileIsNotRegistered) {
  auto p = good();
  p.compute_units = 0;
  EXPECT_THROW(register_device(p), invalid_device_profile);
  EXPECT_THROW((void)find_device("Test Platform", "Test Device"),
               device_not_found);
}

TEST_F(DeviceValidationTest, NewBuiltinProfilesAreDiscoverable) {
  const auto iris = find_device("", "Iris");
  EXPECT_EQ(iris.profile().kind, device_kind::gpu);
  EXPECT_EQ(iris.profile().max_work_group_size, 256u);
  // The integrated profile's reason to exist: bandwidth far below any
  // discrete card's.
  EXPECT_LT(iris.profile().global_bw_gbps, 50.0);

  const auto vega = find_device("AMD", "Vega");
  EXPECT_EQ(vega.profile().kind, device_kind::gpu);
  // The many-CU profile: more compute units than any other built-in.
  EXPECT_GT(vega.profile().compute_units,
            find_device("NVIDIA", "K20m").profile().compute_units);
  EXPECT_GT(vega.profile().compute_units,
            find_device("Intel", "Xeon").profile().compute_units);
}

TEST_F(DeviceValidationTest, AllBuiltinProfilesPassValidation) {
  EXPECT_NO_THROW(validate_profile(xeon_e5_2640v2_profile()));
  EXPECT_NO_THROW(validate_profile(tesla_k20m_profile()));
  EXPECT_NO_THROW(validate_profile(iris6100_profile()));
  EXPECT_NO_THROW(validate_profile(vega56_profile()));
}

}  // namespace
